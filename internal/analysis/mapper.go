// Package analysis implements every measurement analysis in the paper's
// § IV: nameserver replication and its ten-year trends, deployment
// privacy, topological diversity (Table I), third-party provider usage
// (Tables II/III), defective delegations and hijacking risk
// (Figs. 10-12), and parent/child consistency (Figs. 13-14).
//
// The analyses consume abstract inputs — a passive-DNS view, active scan
// results, a GeoIP database, a provider catalog, and a registrar — so
// they run identically against the synthetic world and against real
// data with the same shapes.
package analysis

import (
	"sort"

	"govdns/internal/dnsname"
)

// Country identifies one studied government namespace.
type Country struct {
	// Code is the ISO 3166-1 alpha-2 code.
	Code string
	// Name is the short English name.
	Name string
	// SubRegion is the UN M49 sub-region used for grouping.
	SubRegion string
	// Suffix is the government suffix (d_gov).
	Suffix dnsname.Name
}

// Mapper resolves domain names to their country.
type Mapper struct {
	countries []Country
	suffixes  *dnsname.SuffixSet
	bySuffix  map[dnsname.Name]int
}

// NewMapper builds a mapper over the study's countries.
func NewMapper(countries []Country) *Mapper {
	m := &Mapper{
		countries: append([]Country(nil), countries...),
		suffixes:  dnsname.NewSuffixSet(),
		bySuffix:  make(map[dnsname.Name]int, len(countries)),
	}
	for i, c := range m.countries {
		m.suffixes.Add(c.Suffix)
		m.bySuffix[c.Suffix] = i
	}
	return m
}

// Countries returns the mapper's country list.
func (m *Mapper) Countries() []Country { return m.countries }

// GovSuffixes returns the set of government suffixes.
func (m *Mapper) GovSuffixes() *dnsname.SuffixSet { return m.suffixes }

// CountryOf maps a domain to its country by the longest matching
// government suffix (the suffix itself also matches).
func (m *Mapper) CountryOf(name dnsname.Name) (Country, bool) {
	if idx, ok := m.bySuffix[name]; ok {
		return m.countries[idx], true
	}
	suffix, ok := m.suffixes.LongestSuffix(name)
	if !ok {
		return Country{}, false
	}
	return m.countries[m.bySuffix[suffix]], true
}

// countryIndexOf resolves a domain to its index in m.countries (-1 =
// unmapped) — CountryOf in the index form the corpus memoizes.
func (m *Mapper) countryIndexOf(name dnsname.Name) int32 {
	if idx, ok := m.bySuffix[name]; ok {
		return int32(idx)
	}
	if suffix, ok := m.suffixes.LongestSuffix(name); ok {
		return int32(m.bySuffix[suffix])
	}
	return -1
}

// SuffixOf returns the d_gov a domain belongs to.
func (m *Mapper) SuffixOf(name dnsname.Name) (dnsname.Name, bool) {
	if _, ok := m.bySuffix[name]; ok {
		return name, true
	}
	return m.suffixes.LongestSuffix(name)
}

// IsPrivateHost reports whether an NS hostname represents a private
// (in-government) deployment for a domain: the hostname falls under the
// same d_gov (§ IV-A's lower-bound definition).
func (m *Mapper) IsPrivateHost(domain, host dnsname.Name) bool {
	suffix, ok := m.SuffixOf(domain)
	if !ok {
		return false
	}
	return host.IsSubdomainOf(suffix)
}

// Groups assigns each country to its Table II/III group: the UN
// sub-region, except the given top country codes, which become singleton
// groups. Returns code → group label and the number of distinct groups.
func (m *Mapper) Groups(topCodes []string) (map[string]string, int) {
	top := make(map[string]bool, len(topCodes))
	for _, code := range topCodes {
		top[code] = true
	}
	out := make(map[string]string, len(m.countries))
	distinct := make(map[string]bool)
	for _, c := range m.countries {
		label := c.SubRegion
		if top[c.Code] {
			label = c.Name
		}
		out[c.Code] = label
		distinct[label] = true
	}
	return out, len(distinct)
}

// NSDomain returns the registrable domain of a nameserver hostname, used
// for hijack-risk checks: the last two labels, or three when the second
// label is a common second-level registry label.
func NSDomain(host dnsname.Name) dnsname.Name {
	labels := host.Labels()
	n := 2
	if len(labels) >= 3 {
		switch labels[len(labels)-2] {
		case "co", "com", "net", "org", "ac", "go", "gob", "gouv", "gov":
			n = 3
		}
	}
	if len(labels) <= n {
		return host
	}
	out := labels[len(labels)-n]
	for _, l := range labels[len(labels)-n+1:] {
		out += "." + l
	}
	return dnsname.MustParse(out)
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
