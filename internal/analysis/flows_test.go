package analysis

import (
	"testing"

	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
	"govdns/internal/worldgen"
)

func TestProviderFlowsHandCrafted(t *testing.T) {
	s := pdns.NewStore()
	// Moved from a local hoster to Cloudflare in 2018.
	s.ObserveRange("a.gov.br.", dnswire.TypeNS, "ns1.hostbr.com.", pdns.Date(2015, 1, 1), pdns.Date(2017, 12, 31))
	s.ObserveRange("a.gov.br.", dnswire.TypeNS, "art.ns.cloudflare.com.", pdns.Date(2018, 1, 1), pdns.Date(2020, 12, 31))
	// Moved from private to AWS.
	s.ObserveRange("b.gov.br.", dnswire.TypeNS, "ns1.b.gov.br.", pdns.Date(2015, 1, 1), pdns.Date(2017, 6, 30))
	s.ObserveRange("b.gov.br.", dnswire.TypeNS, "ns-1.awsdns-00.com.", pdns.Date(2017, 7, 1), pdns.Date(2020, 12, 31))
	// Stayed private: no flow.
	s.ObserveRange("c.gov.br.", dnswire.TypeNS, "ns1.c.gov.br.", pdns.Date(2015, 1, 1), pdns.Date(2020, 12, 31))
	// Born after yearA: ignored.
	s.ObserveRange("d.gov.br.", dnswire.TypeNS, "amy.ns.cloudflare.com.", pdns.Date(2019, 1, 1), pdns.Date(2020, 12, 31))

	flows := ProviderFlows(pdns.NewView(s.Snapshot()), testMapper(), providers.Default(), 2016, 2020)
	if len(flows) != 2 {
		t.Fatalf("flows = %+v", flows)
	}
	want := map[[2]string]int{
		{LabelOther, "cloudflare.com"}: 1,
		{LabelPrivate, "AWS DNS"}:      1,
	}
	for _, f := range flows {
		if want[[2]string{f.From, f.To}] != f.Domains {
			t.Errorf("unexpected flow %+v", f)
		}
	}
	if InflowsTo(flows, "cloudflare.com") != 1 {
		t.Errorf("InflowsTo(cloudflare) = %d", InflowsTo(flows, "cloudflare.com"))
	}
}

func TestProviderFlowsOnGeneratedWorld(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 2, Scale: 0.02})
	var countries []Country
	for _, c := range w.Countries {
		countries = append(countries, Country{Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix})
	}
	m := NewMapper(countries)
	view := pdns.NewView(w.PDNS.Snapshot()).Stable(pdns.StabilityFilterDays)
	flows := ProviderFlows(view, m, providers.Default(), 2011, 2020)
	if len(flows) == 0 {
		t.Fatal("no migrations detected over the decade")
	}
	// The decade's dominant story: inflows to the cloud providers
	// dwarf outflows from them.
	for _, cloud := range []string{"AWS DNS", "cloudflare.com"} {
		in := InflowsTo(flows, cloud)
		out := 0
		for _, f := range flows {
			if f.From == cloud {
				out += f.Domains
			}
		}
		if in <= out {
			t.Errorf("%s: inflows %d not greater than outflows %d", cloud, in, out)
		}
		if in == 0 {
			t.Errorf("%s: no inflows at all", cloud)
		}
	}
}
