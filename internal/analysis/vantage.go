package analysis

import (
	"govdns/internal/dnsname"
	"govdns/internal/measure"
)

// VantageDiff compares two scans of the same domain list from different
// vantage points (§ V-A's future-work direction): which domains respond
// from both, from only one side, or from neither. Results are matched by
// domain name.
type VantageDiff struct {
	// Both counts domains responsive from both vantages.
	Both int
	// OnlyA and OnlyB count domains responsive from exactly one side —
	// the geo-fencing signal.
	OnlyA, OnlyB int
	// Neither counts domains responsive from no vantage.
	Neither int
	// OnlyBDomains lists the domains visible only from vantage B
	// (typically the domestic vantage), sorted.
	OnlyBDomains []dnsname.Name
}

// CompareVantages computes the diff. Domains present in only one input
// are ignored.
func CompareVantages(a, b []*measure.DomainResult) *VantageDiff {
	byName := make(map[dnsname.Name]*measure.DomainResult, len(a))
	for _, r := range a {
		byName[r.Domain] = r
	}
	diff := &VantageDiff{}
	for _, rb := range b {
		ra, ok := byName[rb.Domain]
		if !ok {
			continue
		}
		respA, respB := ra.Responsive(), rb.Responsive()
		switch {
		case respA && respB:
			diff.Both++
		case respA:
			diff.OnlyA++
		case respB:
			diff.OnlyB++
			diff.OnlyBDomains = append(diff.OnlyBDomains, rb.Domain)
		default:
			diff.Neither++
		}
	}
	return diff
}
