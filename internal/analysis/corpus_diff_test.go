package analysis

// The corpus-vs-reference differential harness: a seeded random store
// generator exercises every corner the corpus must reproduce —
// multi-NS and single-NS domains, provider hosts (exact-suffix and
// regex families), private in-government hosts, unparseable rdata,
// transient windows the stability filter drops, records straddling
// year and study-span boundaries, unmapped owners, and non-NS types —
// and every corpus-backed analysis must deep-equal its retained
// view-based reference implementation, on both the stable and the raw
// view. Runs under `make check` (and therefore under -race, which also
// exercises the sharded compile).

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
)

// genHost picks an NS rdata from the corners of the labeling space.
func genHost(rng *rand.Rand, owner dnsname.Name, suffix string, i int) string {
	switch rng.Intn(12) {
	case 0: // private: under the owner itself
		return "ns1." + string(owner)
	case 1: // private: central government host
		return fmt.Sprintf("ns%d.dns.%s", 1+rng.Intn(3), suffix)
	case 2: // AWS regex family
		return fmt.Sprintf("ns-%d.awsdns-%d.com.", rng.Intn(2048), rng.Intn(64))
	case 3: // Azure regex family
		return fmt.Sprintf("ns%d-0%d.azure-dns.com.", 1+rng.Intn(4), rng.Intn(10))
	case 4: // exact-suffix providers
		hosts := []string{
			"ns1.hichina.com.", "dns2.hichina.com.", "ns3.xincache.com.",
			"v1.dns-diy.net.", "tom.cloudflare.com.", "ns05.domaincontrol.com.",
			"ns1.bluehost.com.", "pdns1.ultradns.net.",
		}
		return hosts[rng.Intn(len(hosts))]
	case 5: // unparseable rdata (empty label)
		return "bad..host.com."
	case 6: // rare, attacker-shaped host (low nsdomain spread)
		return fmt.Sprintf("ns.evil%d.net.", i)
	default: // generic third-party hoster, shared across domains
		return fmt.Sprintf("ns%d.hoster%d.example.net.", 1+rng.Intn(2), rng.Intn(9))
	}
}

// genStore builds the seeded random passive-DNS store for one
// differential round.
func genStore(seed int64) *pdns.Store {
	rng := rand.New(rand.NewSource(seed))
	s := pdns.NewStore()
	suffixes := []string{"gov.br.", "gov.cn.", "gob.mx."}
	nDomains := 120 + rng.Intn(80)
	for i := 0; i < nDomains; i++ {
		suffix := suffixes[rng.Intn(len(suffixes))]
		var name dnsname.Name
		if rng.Intn(10) == 0 {
			// Unmapped owner: matched by the wildcard expansion but
			// outside every government suffix.
			name = dnsname.Name(fmt.Sprintf("example%d.com.", i))
		} else {
			name = dnsname.Name(fmt.Sprintf("agency%d.%s", i, suffix))
		}
		for r, n := 0, 1+rng.Intn(4); r < n; r++ {
			host := genHost(rng, name, suffix, i)
			from := pdns.Date(2010+rng.Intn(12), time.Month(1+rng.Intn(12)), 1+rng.Intn(28))
			var dur int
			if rng.Intn(4) == 0 {
				dur = 1 + rng.Intn(6) // transient: dropped by the 7-day filter
			} else {
				dur = 7 + rng.Intn(900) // stable, possibly spanning years
			}
			s.ObserveRange(name, dnswire.TypeNS, host, from, from+pdns.Day(dur-1))
		}
		if rng.Intn(3) == 0 {
			from := pdns.Date(2011+rng.Intn(10), time.Month(1+rng.Intn(12)), 1+rng.Intn(28))
			s.ObserveRange(name, dnswire.TypeA, "198.51.100.7", from, from+30)
		}
	}
	return s
}

func TestCorpusDifferential(t *testing.T) {
	const startYear, endYear = 2011, 2020
	for _, seed := range []int64{1, 7, 42, 1337} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			store := genStore(seed)
			m := testMapper()
			catalog := providers.Default()
			raw := pdns.NewView(store.Snapshot())
			stable := raw.Stable(pdns.StabilityFilterDays)
			views := []struct {
				name string
				view *pdns.View
			}{{"stable", stable}, {"raw", raw}}
			for _, v := range views {
				v := v
				t.Run(v.name, func(t *testing.T) {
					c := CompileCorpus(v.view, m, startYear, endYear)
					pa := NewProviderAnalysis(catalog, m, []string{"cn"})

					// Per-(domain, year) mode: the sweep against NSDaily.
					idx := indexByDomain(v.view)
					for _, name := range idx.names {
						i := int(c.nameID[name])
						for year := startYear; year <= endYear; year++ {
							want, ok := NSModeForYear(idx.sets[name], year)
							if !ok {
								want = 0
							}
							if got := int(c.modeAt(i, year-startYear)); got != want {
								t.Fatalf("mode(%s, %d) = %d, want %d", name, year, got, want)
							}
						}
					}

					// Figs. 2/3/7.
					if got, want := c.Yearly(), PDNSYearly(v.view, m, startYear, endYear); !reflect.DeepEqual(got, want) {
						t.Errorf("Yearly diverges:\n got %+v\nwant %+v", got, want)
					}
					if got, want := c.NameserversPerYear(), NameserversPerYear(v.view, startYear, endYear); !reflect.DeepEqual(got, want) {
						t.Errorf("NameserversPerYear diverges:\n got %v\nwant %v", got, want)
					}

					// Figs. 4 and 6 (every year, not just the usual ones).
					for year := startYear; year <= endYear; year++ {
						if got, want := c.DomainsPerCountry(year), DomainsPerCountry(v.view, m, year); !reflect.DeepEqual(got, want) {
							t.Errorf("DomainsPerCountry(%d) diverges:\n got %v\nwant %v", year, got, want)
						}
						if got, want := c.SingleNSDomains(year), SingleNSDomains(v.view, year); !reflect.DeepEqual(got, want) {
							t.Errorf("SingleNSDomains(%d) diverges: got %d names, want %d", year, len(got), len(want))
						}
					}
					if got, want := c.SingleNSChurn(), SingleNSChurn(v.view, startYear, endYear); !reflect.DeepEqual(got, want) {
						t.Errorf("SingleNSChurn diverges:\n got %+v\nwant %+v", got, want)
					}

					// Tables II/III and the per-country share.
					for _, year := range []int{2013, endYear} {
						if got, want := pa.MajorProvidersCorpus(c, year), pa.MajorProviders(v.view, year); !reflect.DeepEqual(got, want) {
							t.Errorf("MajorProviders(%d) diverges:\n got %+v\nwant %+v", year, got, want)
						}
						if got, want := pa.TopProvidersCorpus(c, year, 11), pa.TopProviders(v.view, year, 11); !reflect.DeepEqual(got, want) {
							t.Errorf("TopProviders(%d) diverges:\n got %+v\nwant %+v", year, got, want)
						}
						for _, code := range []string{"cn", "br"} {
							if got, want := pa.GovProviderShareCorpus(c, year, code), pa.GovProviderShare(v.view, year, code); !reflect.DeepEqual(got, want) {
								t.Errorf("GovProviderShare(%d, %s) diverges:\n got %v\nwant %v", year, code, got, want)
							}
						}
					}

					// Migration flows.
					if got, want := c.ProviderFlows(catalog, 2016, endYear), ProviderFlows(v.view, m, catalog, 2016, endYear); !reflect.DeepEqual(got, want) {
						t.Errorf("ProviderFlows diverges:\n got %+v\nwant %+v", got, want)
					}

					// Hijack forensics (the study runs this on raw, but the
					// equivalence must hold for any view).
					cfg := HijackForensicsConfig{}
					if got, want := SuspiciousTransitionsCorpus(c, catalog, cfg), SuspiciousTransitions(v.view, m, catalog, cfg); !reflect.DeepEqual(got, want) {
						t.Errorf("SuspiciousTransitions diverges:\n got %+v\nwant %+v", got, want)
					}
				})
			}
		})
	}
}
