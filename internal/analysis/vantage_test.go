package analysis

import (
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/measure"
)

func vantageResult(name dnsname.Name, responsive bool) *measure.DomainResult {
	r := &measure.DomainResult{Domain: name, ParentResponded: true,
		ParentNS: []dnsname.Name{"ns1." + name}}
	if responsive {
		r.Servers = []measure.ServerResponse{{
			Host: "ns1." + name, OK: true, Authoritative: true,
			NS: []dnsname.Name{"ns1." + name},
		}}
	}
	return r
}

func TestCompareVantages(t *testing.T) {
	a := []*measure.DomainResult{
		vantageResult("both.gov.br.", true),
		vantageResult("onlya.gov.br.", true),
		vantageResult("onlyb.gov.br.", false),
		vantageResult("neither.gov.br.", false),
		vantageResult("unmatched.gov.br.", true),
	}
	b := []*measure.DomainResult{
		vantageResult("both.gov.br.", true),
		vantageResult("onlya.gov.br.", false),
		vantageResult("onlyb.gov.br.", true),
		vantageResult("neither.gov.br.", false),
	}
	diff := CompareVantages(a, b)
	if diff.Both != 1 || diff.OnlyA != 1 || diff.OnlyB != 1 || diff.Neither != 1 {
		t.Errorf("diff = %+v", diff)
	}
	if len(diff.OnlyBDomains) != 1 || diff.OnlyBDomains[0] != "onlyb.gov.br." {
		t.Errorf("OnlyBDomains = %v", diff.OnlyBDomains)
	}
}

func TestCompareVantagesEmpty(t *testing.T) {
	diff := CompareVantages(nil, nil)
	if diff.Both != 0 || len(diff.OnlyBDomains) != 0 {
		t.Errorf("diff = %+v", diff)
	}
}
