package analysis

import (
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
	"govdns/internal/worldgen"
)

func TestSuspiciousTransitionsHandCrafted(t *testing.T) {
	s := pdns.NewStore()
	start := pdns.Date(2016, time.March, 1)
	// Victim: stable private NS plus a 14-day attacker window.
	s.ObserveRange("victim.gov.br.", dnswire.TypeNS, "ns1.victim.gov.br.",
		pdns.Date(2012, 1, 1), pdns.Date(2020, 12, 31))
	s.ObserveRange("victim.gov.br.", dnswire.TypeNS, "ns1.evil-infra.com.", start, start+14)

	// Benign short-lived cases that must NOT be flagged:
	// 1. internal rename (in-government host).
	s.ObserveRange("mover.gov.br.", dnswire.TypeNS, "ns-new.mover.gov.br.", start, start+5)
	// 2. a Cloudflare trial.
	s.ObserveRange("trial.gov.br.", dnswire.TypeNS, "amy.ns.cloudflare.com.", start, start+10)
	// 3. a popular DDoS-protection service used by several domains.
	for _, d := range []dnsname.Name{"a.gov.br.", "b.gov.br.", "c.gov.br.", "d.gov.br."} {
		s.ObserveRange(d, dnswire.TypeNS, "ns1.ddos-shield.net.", start, start+3)
	}
	// 4. a long-lived third-party record (a real hoster relationship).
	s.ObserveRange("steady.gov.br.", dnswire.TypeNS, "ns1.smallhost.com.",
		pdns.Date(2014, 1, 1), pdns.Date(2020, 12, 31))

	got := SuspiciousTransitions(pdns.NewView(s.Snapshot()), testMapper(), providers.Default(),
		HijackForensicsConfig{})
	if len(got) != 1 {
		t.Fatalf("transitions = %+v, want exactly the victim", got)
	}
	tr := got[0]
	if tr.Domain != "victim.gov.br." || tr.NSDomain != "evil-infra.com." {
		t.Errorf("transition = %+v", tr)
	}
	if tr.DurationDays != 15 {
		t.Errorf("DurationDays = %d, want 15", tr.DurationDays)
	}
}

func TestSuspiciousTransitionsRecallOnInjectedWorld(t *testing.T) {
	w := worldgen.Generate(worldgen.Config{Seed: 5, Scale: 0.01, HijackEvents: 8})
	if len(w.Hijacks) < 5 {
		t.Fatalf("only %d hijacks injected", len(w.Hijacks))
	}
	var countries []Country
	for _, c := range w.Countries {
		countries = append(countries, Country{
			Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix,
		})
	}
	mapper := NewMapper(countries)

	// Forensics must run on the RAW view: the stability filter would
	// erase the evidence.
	raw := pdns.NewView(w.PDNS.Snapshot())
	found := SuspiciousTransitions(raw, mapper, providers.Default(), HijackForensicsConfig{})

	flagged := make(map[string]bool)
	for _, tr := range found {
		flagged[string(tr.Domain)+"|"+string(tr.NSDomain)] = true
	}
	missed := 0
	for _, ev := range w.Hijacks {
		if !flagged[string(ev.Domain)+"|"+string(ev.AttackerDomain)] {
			missed++
			t.Logf("missed: %+v", ev)
		}
	}
	if missed > 0 {
		t.Errorf("detector missed %d of %d injected hijacks", missed, len(w.Hijacks))
	}

	// Precision: candidates are dominated by the injected events plus
	// migration cache tails; attacker domains must be a recognizable
	// fraction, and every injected attacker domain must surface.
	if len(found) > len(w.Hijacks)*40 {
		t.Errorf("detector drowned in noise: %d candidates for %d true events",
			len(found), len(w.Hijacks))
	}
}

func TestSuspiciousTransitionsFilterAblation(t *testing.T) {
	// The same world through the 7-day stability filter loses short
	// windows entirely — documenting why forensics needs the raw view.
	w := worldgen.Generate(worldgen.Config{Seed: 5, Scale: 0.01, HijackEvents: 8})
	var countries []Country
	for _, c := range w.Countries {
		countries = append(countries, Country{Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix})
	}
	mapper := NewMapper(countries)
	raw := pdns.NewView(w.PDNS.Snapshot())
	filtered := raw.Stable(pdns.StabilityFilterDays)
	rawHits := SuspiciousTransitions(raw, mapper, providers.Default(), HijackForensicsConfig{})
	filteredHits := SuspiciousTransitions(filtered, mapper, providers.Default(), HijackForensicsConfig{})
	if len(filteredHits) >= len(rawHits) {
		t.Errorf("stability filter did not reduce forensic visibility: %d -> %d",
			len(rawHits), len(filteredHits))
	}
}
