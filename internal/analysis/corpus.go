package analysis

// The columnar PDNS analysis corpus: a one-time-compiled, read-only
// representation of a passive-DNS view that every yearly analysis
// consumes instead of re-indexing raw []pdns.RecordSet per figure.
//
// The compile step interns owner names and rdata strings into dense
// IDs (each rdata is parsed into a dnsname.Name exactly once, ever),
// lays NS records out as struct-of-arrays grouped by owner, and
// precomputes the per-(domain, year) NS-count mode for every study
// year in a single difference-array sweep over days — replacing
// NSDaily's O(window) per-day increment loop that the view-based
// analyses re-executed per figure per year. Year-invariant predicates
// (Mapper.CountryOf, Mapper.IsPrivateHost, provider identification)
// are memoized per interned ID.
//
// Determinism contract: owner IDs are assigned from the canonically
// sorted name list and rdata IDs from first encounter in view order;
// every parallel phase of the compile and of Yearly writes disjoint,
// index-addressed output slots (the same index-ordered assembly
// discipline as the scanner's per-domain fan-out), so a corpus and
// everything computed from it are bit-identical across GOMAXPROCS
// settings. The view-based implementations in this package are
// retained as the reference slow path; TestCorpusDifferential pins
// the equivalence.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/pdns"
	"govdns/internal/providers"
)

// Corpus is the compiled columnar form of one PDNS view. It is
// immutable after CompileCorpus and safe for concurrent use.
type Corpus struct {
	m                  *Mapper
	startYear, endYear int
	years              int
	yearFirst          []pdns.Day // per year index
	yearLast           []pdns.Day

	// Interned owner names in canonical (dnsname.Compare) order;
	// nameID inverts the slice.
	names  []dnsname.Name
	nameID map[dnsname.Name]int32

	// Interned NS rdata strings with their once-parsed hostnames.
	// hosts[id] is valid only when hostOK[id].
	rdatas  []string
	rdataID map[string]int32
	hosts   []dnsname.Name
	hostOK  []bool

	// NS records as struct-of-arrays grouped by owner: owner i's
	// records occupy [nsOff[i], nsOff[i+1]), preserving the view's
	// per-owner record order (sorted views keep rdata ascending, the
	// order the reference implementations see).
	nsOff   []int32
	nsRData []int32
	nsFirst []pdns.Day
	nsLast  []pdns.Day
	// nsPrivate memoizes the year-invariant private-deployment bit per
	// record: rdata parses and the host falls under the owner's
	// government suffix (Mapper.IsPrivateHost).
	nsPrivate []bool

	// nsOwners lists the owner IDs that have at least one NS record —
	// the domain population every figure iterates.
	nsOwners []int32

	// country memoizes Mapper.CountryOf per owner as an index into the
	// mapper's country list (-1 = unmapped).
	country []int32

	// mode is the per-(owner, year) NS-count mode, row-major by owner;
	// 0 means the domain had no active NS day that year (NSModeForYear
	// !ok).
	mode []int32

	// activeNames counts, per year, the distinct owner names with any
	// record (of any type) active that year — pdnsq's -counts series.
	activeNames []int

	// Lazily computed provider labels per rdata ID for one catalog
	// (the study uses a single catalog; a different one recomputes).
	labelMu  sync.Mutex
	labelCat *providers.Catalog
	labels   *rdataLabels
}

// parallelChunks splits [0, n) into one contiguous chunk per worker
// and runs fn on each concurrently. Chunk boundaries depend only on n
// and GOMAXPROCS; callers write disjoint index ranges, so results are
// deterministic regardless of scheduling.
func parallelChunks(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// CompileCorpus builds the columnar corpus for view over the study
// years [startYear, endYear]. The mapper may be nil when only
// type-agnostic queries (ActiveNamesPerYear) are needed; country and
// private-deployment columns are then empty.
func CompileCorpus(view *pdns.View, m *Mapper, startYear, endYear int) *Corpus {
	c := &Corpus{m: m, startYear: startYear, endYear: endYear}
	if endYear >= startYear {
		c.years = endYear - startYear + 1
	}
	c.yearFirst = make([]pdns.Day, c.years)
	c.yearLast = make([]pdns.Day, c.years)
	for y := 0; y < c.years; y++ {
		c.yearFirst[y], c.yearLast[y] = pdns.YearRange(startYear + y)
	}

	// Phase 1 — intern owner names, sorted so IDs (and therefore every
	// per-owner loop) follow canonical order.
	c.nameID = make(map[dnsname.Name]int32, len(view.Sets)/2+1)
	for i := range view.Sets {
		name := view.Sets[i].RRName
		if _, ok := c.nameID[name]; !ok {
			c.nameID[name] = -1
			c.names = append(c.names, name)
		}
	}
	sort.Slice(c.names, func(i, j int) bool { return dnsname.Compare(c.names[i], c.names[j]) < 0 })
	for i, n := range c.names {
		c.nameID[n] = int32(i)
	}

	// Phase 2 — count NS records per owner and mark all-type year
	// activity bits.
	n := len(c.names)
	counts := make([]int32, n)
	words := (c.years + 63) / 64
	var activeBits []uint64
	if c.years > 0 {
		activeBits = make([]uint64, n*words)
	}
	nsTotal := 0
	for i := range view.Sets {
		rs := &view.Sets[i]
		id := int(c.nameID[rs.RRName])
		if c.years > 0 {
			c.markYears(activeBits[id*words:(id+1)*words], rs.FirstSeen, rs.LastSeen)
		}
		if rs.RRType == dnswire.TypeNS {
			counts[id]++
			nsTotal++
		}
	}
	c.activeNames = make([]int, c.years)
	for id := 0; id < n && c.years > 0; id++ {
		row := activeBits[id*words : (id+1)*words]
		for y := 0; y < c.years; y++ {
			if row[y/64]&(1<<(y%64)) != 0 {
				c.activeNames[y]++
			}
		}
	}

	// Phase 3 — offsets and fill; rdata interned in view order.
	c.nsOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		c.nsOff[i+1] = c.nsOff[i] + counts[i]
		if counts[i] > 0 {
			c.nsOwners = append(c.nsOwners, int32(i))
		}
	}
	c.nsRData = make([]int32, nsTotal)
	c.nsFirst = make([]pdns.Day, nsTotal)
	c.nsLast = make([]pdns.Day, nsTotal)
	c.nsPrivate = make([]bool, nsTotal)
	cursor := make([]int32, n)
	copy(cursor, c.nsOff[:n])
	c.rdataID = make(map[string]int32)
	for i := range view.Sets {
		rs := &view.Sets[i]
		if rs.RRType != dnswire.TypeNS {
			continue
		}
		id, ok := c.rdataID[rs.RData]
		if !ok {
			id = int32(len(c.rdatas))
			c.rdataID[rs.RData] = id
			c.rdatas = append(c.rdatas, rs.RData)
		}
		o := c.nameID[rs.RRName]
		p := cursor[o]
		cursor[o]++
		c.nsRData[p] = id
		c.nsFirst[p] = rs.FirstSeen
		c.nsLast[p] = rs.LastSeen
	}

	// Phase 4 — parse every distinct rdata exactly once (sharded).
	c.hosts = make([]dnsname.Name, len(c.rdatas))
	c.hostOK = make([]bool, len(c.rdatas))
	parallelChunks(len(c.rdatas), func(lo, hi int) {
		for id := lo; id < hi; id++ {
			if h, err := dnsname.Parse(c.rdatas[id]); err == nil {
				c.hosts[id], c.hostOK[id] = h, true
			}
		}
	})

	// Phase 5 — per-owner country index and per-record private bits
	// (sharded over NS owners; year-invariant, so computed once).
	c.country = make([]int32, n)
	for i := range c.country {
		c.country[i] = -1
	}
	if m != nil {
		parallelChunks(len(c.nsOwners), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := int(c.nsOwners[k])
				name := c.names[i]
				c.country[i] = m.countryIndexOf(name)
				suffix, ok := m.SuffixOf(name)
				if !ok {
					continue
				}
				for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
					id := c.nsRData[r]
					c.nsPrivate[r] = c.hostOK[id] && c.hosts[id].IsSubdomainOf(suffix)
				}
			}
		})
	}

	// Phase 6 — the sweep: per-(owner, year) NS-count mode from one
	// difference array over the owner's active day span.
	c.mode = make([]int32, n*c.years)
	if c.years > 0 {
		c.sweepModes()
	}
	return c
}

// markYears sets the bit of every study year the window [first, last]
// overlaps. Calendar years partition days, so the overlapped years are
// exactly [first.Year(), last.Year()] clamped to the study span.
func (c *Corpus) markYears(bits []uint64, first, last pdns.Day) {
	if last < c.yearFirst[0] || first > c.yearLast[c.years-1] {
		return
	}
	fy := first.Year() - c.startYear
	if fy < 0 {
		fy = 0
	}
	ly := last.Year() - c.startYear
	if ly >= c.years {
		ly = c.years - 1
	}
	for y := fy; y <= ly; y++ {
		bits[y/64] |= 1 << (y % 64)
	}
}

// sweepModes fills c.mode: for each owner one difference array over
// its clipped record windows, one prefix-sum pass over the touched day
// range, and a per-year frequency count whose smallest-most-frequent
// value is exactly stats.Mode of NSDaily — 2 writes per record plus
// one pass over active days, instead of per-day increments per record
// per year per figure.
func (c *Corpus) sweepModes() {
	spanFirst := c.yearFirst[0]
	spanLast := c.yearLast[c.years-1]
	spanDays := int(spanLast-spanFirst) + 1
	dayYear := make([]int16, spanDays)
	for y := 0; y < c.years; y++ {
		for d := c.yearFirst[y]; d <= c.yearLast[y]; d++ {
			dayYear[d-spanFirst] = int16(y)
		}
	}
	parallelChunks(len(c.nsOwners), func(lo, hi int) {
		diff := make([]int32, spanDays+1)
		freq := make([]int32, 8)
		for k := lo; k < hi; k++ {
			i := int(c.nsOwners[k])
			loD, hiD := spanDays, -1
			for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
				f, l := c.nsFirst[r], c.nsLast[r]
				if l < spanFirst || f > spanLast {
					continue
				}
				if f < spanFirst {
					f = spanFirst
				}
				if l > spanLast {
					l = spanLast
				}
				fi, li := int(f-spanFirst), int(l-spanFirst)
				diff[fi]++
				diff[li+1]--
				if fi < loD {
					loD = fi
				}
				if li > hiD {
					hiD = li
				}
			}
			if hiD < 0 {
				continue
			}
			row := c.mode[i*c.years : (i+1)*c.years]
			running := int32(0)
			maxC := int32(0)
			curYear := int(dayYear[loD])
			flush := func(y int) {
				best, bestFreq := int32(0), int32(0)
				for v := int32(1); v <= maxC; v++ {
					// Strict > keeps the smallest value on ties,
					// matching stats.Mode.
					if freq[v] > bestFreq {
						best, bestFreq = v, freq[v]
					}
					freq[v] = 0
				}
				maxC = 0
				row[y] = best
			}
			for d := loD; d <= hiD; d++ {
				running += diff[d]
				diff[d] = 0
				if y := int(dayYear[d]); y != curYear {
					flush(curYear)
					curYear = y
				}
				if running == 0 {
					continue
				}
				for int(running) >= len(freq) {
					freq = append(freq, make([]int32, len(freq))...)
				}
				freq[running]++
				if running > maxC {
					maxC = running
				}
			}
			flush(curYear)
			diff[hiD+1] = 0
		}
	})
}

// StartYear returns the first study year the corpus covers.
func (c *Corpus) StartYear() int { return c.startYear }

// EndYear returns the last study year the corpus covers.
func (c *Corpus) EndYear() int { return c.endYear }

// NumDomains returns the number of owner names with NS records.
func (c *Corpus) NumDomains() int { return len(c.nsOwners) }

// NumNames returns the number of distinct owner names of any type.
func (c *Corpus) NumNames() int { return len(c.names) }

// NumRecords returns the number of NS record sets.
func (c *Corpus) NumRecords() int { return len(c.nsRData) }

// NumRData returns the number of distinct interned NS rdata strings.
func (c *Corpus) NumRData() int { return len(c.rdatas) }

// yearIndex converts a calendar year to the corpus row index, or
// panics: serving a year outside the compiled span would silently
// return zeros where the reference path computes real values.
func (c *Corpus) yearIndex(year int) int {
	y := year - c.startYear
	if y < 0 || y >= c.years {
		panic(fmt.Sprintf("analysis: year %d outside corpus span %d-%d", year, c.startYear, c.endYear))
	}
	return y
}

// modeAt returns the precomputed NS-count mode for (owner, year row).
func (c *Corpus) modeAt(owner, y int) int32 { return c.mode[owner*c.years+y] }

// overlapsYear reports whether NS record r's window intersects year
// row y.
func (c *Corpus) overlapsYear(r int32, y int) bool {
	return c.nsFirst[r] <= c.yearLast[y] && c.yearFirst[y] <= c.nsLast[r]
}

// Yearly computes YearStats for every corpus year — the corpus-backed
// fast path of PDNSYearly, sharded across years with index-ordered
// assembly.
func (c *Corpus) Yearly() []YearStats {
	out := make([]YearStats, c.years)
	nCountries := 0
	if c.m != nil {
		nCountries = len(c.m.countries)
	}
	parallelChunks(c.years, func(lo, hi int) {
		// Epoch-marked scratch: one allocation per worker per call,
		// reused across the worker's years.
		countrySeen := make([]int32, nCountries)
		hostSeen := make([]int32, len(c.rdatas))
		for y := lo; y < hi; y++ {
			epoch := int32(y + 1)
			ys := YearStats{Year: c.startYear + y}
			for _, oi := range c.nsOwners {
				i := int(oi)
				mode := c.modeAt(i, y)
				if mode == 0 {
					continue
				}
				ys.Domains++
				if ci := c.country[i]; ci >= 0 && countrySeen[ci] != epoch {
					countrySeen[ci] = epoch
					ys.Countries++
				}
				private := true
				for r := c.nsOff[i]; r < c.nsOff[i+1]; r++ {
					if !c.overlapsYear(r, y) {
						continue
					}
					if id := c.nsRData[r]; hostSeen[id] != epoch {
						hostSeen[id] = epoch
						ys.Nameservers++
					}
					if !c.nsPrivate[r] {
						private = false
					}
				}
				// mode > 0 guarantees an overlapping record, so the
				// reference path's anyHost condition always holds here.
				if private {
					ys.PrivateAll++
				}
				if mode == 1 {
					ys.SingleNS++
					if private {
						ys.SingleNSPrivate++
					}
				}
			}
			out[y] = ys
		}
	})
	return out
}

// DomainsPerCountry returns each country's domain count for one year —
// the corpus-backed fast path of the package-level DomainsPerCountry.
func (c *Corpus) DomainsPerCountry(year int) map[string]int {
	y := c.yearIndex(year)
	out := make(map[string]int)
	for _, oi := range c.nsOwners {
		i := int(oi)
		if c.modeAt(i, y) == 0 {
			continue
		}
		if ci := c.country[i]; ci >= 0 {
			out[c.m.countries[ci].Code]++
		}
	}
	return out
}

// SingleNSDomains returns the set of d_1NS for a year — the
// corpus-backed fast path of the package-level SingleNSDomains.
func (c *Corpus) SingleNSDomains(year int) map[dnsname.Name]bool {
	y := c.yearIndex(year)
	out := make(map[dnsname.Name]bool)
	for _, oi := range c.nsOwners {
		if c.modeAt(int(oi), y) == 1 {
			out[c.names[oi]] = true
		}
	}
	return out
}

// SingleNSChurn computes the Fig. 6 churn/overlap series over the
// corpus span (base year = the corpus start year) — the corpus-backed
// fast path of the package-level SingleNSChurn, one pass over the
// precomputed mode rows.
func (c *Corpus) SingleNSChurn() []ChurnStats {
	if c.years <= 1 {
		return nil
	}
	out := make([]ChurnStats, c.years-1)
	for y := 1; y < c.years; y++ {
		out[y-1].Year = c.startYear + y
	}
	baseTotal := 0
	for _, oi := range c.nsOwners {
		row := c.mode[int(oi)*c.years : (int(oi)+1)*c.years]
		base := row[0] == 1
		if base {
			baseTotal++
		}
		for y := 1; y < c.years; y++ {
			cs := &out[y-1]
			if row[y] == 1 {
				cs.Total++
				if row[y-1] != 1 {
					cs.New++
				}
				if base {
					cs.FromBase++
				}
			}
			if base && row[y] == 0 {
				cs.BaseGone++
			}
		}
	}
	for i := range out {
		out[i].BaseTotal = baseTotal
	}
	return out
}

// NameserversPerYear returns the number of distinct NS rdata strings
// active in each corpus year (Fig. 3's series over the whole view) —
// the corpus-backed fast path of the package-level NameserversPerYear.
// Distinctness per year is a bitset union over each rdata's record
// windows.
func (c *Corpus) NameserversPerYear() []int {
	out := make([]int, 0, c.years)
	if c.years == 0 {
		return out
	}
	words := (c.years + 63) / 64
	bits := make([]uint64, len(c.rdatas)*words)
	spanFirst, spanLast := c.yearFirst[0], c.yearLast[c.years-1]
	for r := range c.nsRData {
		f, l := c.nsFirst[r], c.nsLast[r]
		if l < spanFirst || f > spanLast {
			continue
		}
		fy := f.Year() - c.startYear
		if fy < 0 {
			fy = 0
		}
		ly := l.Year() - c.startYear
		if ly >= c.years {
			ly = c.years - 1
		}
		row := bits[int(c.nsRData[r])*words:]
		for y := fy; y <= ly; y++ {
			row[y/64] |= 1 << (y % 64)
		}
	}
	for y := 0; y < c.years; y++ {
		w, b := y/64, uint(y%64)
		count := 0
		for id := 0; id < len(c.rdatas); id++ {
			if bits[id*words+w]&(1<<b) != 0 {
				count++
			}
		}
		out = append(out, count)
	}
	return out
}

// ActiveNamesPerYear returns, per corpus year, the number of distinct
// owner names with any record (of any type) active that year — the
// series behind pdnsq's -counts mode. The slice is a copy.
func (c *Corpus) ActiveNamesPerYear() []int {
	return append([]int(nil), c.activeNames...)
}
