package analysis

import (
	"testing"

	"govdns/internal/pdns"
	"govdns/internal/providers"
)

func newProviderAnalysis() (*ProviderAnalysis, *pdns.View) {
	pa := NewProviderAnalysis(providers.Default(), testMapper(), []string{"cn"})
	view := pdns.NewView(buildTestPDNS().Snapshot())
	return pa, view
}

func usageByLabel(rows []ProviderUsage) map[string]ProviderUsage {
	out := make(map[string]ProviderUsage, len(rows))
	for _, r := range rows {
		out[r.Label] = r
	}
	return out
}

func TestMajorProviders2020(t *testing.T) {
	pa, view := newProviderAnalysis()
	rows := pa.MajorProviders(view, 2020)
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8 major providers", len(rows))
	}
	byLabel := usageByLabel(rows)
	cf := byLabel["cloudflare.com"]
	// d.gob.mx uses cloudflare exclusively in 2020.
	if cf.Domains != 1 || cf.SingleProvider != 1 {
		t.Errorf("cloudflare usage = %+v", cf)
	}
	if cf.Countries != 1 || cf.SubRegions != 1 {
		t.Errorf("cloudflare reach = %+v", cf)
	}
	// 3 active domains in 2020.
	if cf.DomainsPct < 33 || cf.DomainsPct > 34 {
		t.Errorf("cloudflare DomainsPct = %v", cf.DomainsPct)
	}
	if amazon := byLabel["AWS DNS"]; amazon.Domains != 0 {
		t.Errorf("AWS usage = %+v", amazon)
	}
}

func TestMajorProviders2013NoCloudflare(t *testing.T) {
	pa, view := newProviderAnalysis()
	byLabel := usageByLabel(pa.MajorProviders(view, 2013))
	if byLabel["cloudflare.com"].Domains != 0 {
		t.Errorf("cloudflare in 2013 = %+v", byLabel["cloudflare.com"])
	}
}

func TestTopProviders(t *testing.T) {
	pa, view := newProviderAnalysis()
	rows := pa.TopProviders(view, 2020, 10)
	if len(rows) == 0 {
		t.Fatal("no top providers")
	}
	// Expect cloudflare.com (mx) and hichina.com (cn) present; private
	// nameserver domains also appear as labels by design (the paper
	// ranks raw nameserver domains), but each serves one country.
	byLabel := usageByLabel(rows)
	if byLabel["cloudflare.com"].Domains != 1 {
		t.Errorf("cloudflare row = %+v", byLabel["cloudflare.com"])
	}
	if byLabel["hichina.com"].Domains != 1 {
		t.Errorf("hichina row = %+v", byLabel["hichina.com"])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Countries > rows[i-1].Countries {
			t.Fatalf("rows not sorted by countries: %+v before %+v", rows[i-1], rows[i])
		}
	}
}

func TestTopProvidersEraShift(t *testing.T) {
	pa, view := newProviderAnalysis()
	rows2015 := usageByLabel(pa.TopProviders(view, 2015, 0))
	rows2020 := usageByLabel(pa.TopProviders(view, 2020, 0))
	// hostmx1.com serves d.gob.mx until 2017, then cloudflare takes
	// over: the group labels must reflect the era.
	if rows2015["hostmx1.com"].Domains != 1 {
		t.Errorf("2015 hostmx1 = %+v", rows2015["hostmx1.com"])
	}
	if rows2015["cloudflare.com"].Domains != 0 {
		t.Errorf("2015 cloudflare = %+v", rows2015["cloudflare.com"])
	}
	if rows2020["hostmx1.com"].Domains != 0 {
		t.Errorf("2020 hostmx1 = %+v", rows2020["hostmx1.com"])
	}
}

func TestGovProviderShare(t *testing.T) {
	pa, view := newProviderAnalysis()
	shares := pa.GovProviderShare(view, 2020, "cn")
	if shares["hichina.com"] != 100 {
		t.Errorf("hichina share of gov.cn = %v", shares["hichina.com"])
	}
	sharesBR := pa.GovProviderShare(view, 2020, "br")
	if len(sharesBR) != 0 {
		t.Errorf("br shares = %v (a.gov.br is private)", sharesBR)
	}
}

func TestProviderUsageD1P(t *testing.T) {
	// A domain mixing a provider with a private NS is not d_1P.
	s := pdns.NewStore()
	s.ObserveRange("mix.gov.br.", 2, "art.ns.cloudflare.com.", pdns.Date(2020, 1, 1), pdns.Date(2020, 12, 31))
	s.ObserveRange("mix.gov.br.", 2, "ns1.mix.gov.br.", pdns.Date(2020, 1, 1), pdns.Date(2020, 12, 31))
	pa := NewProviderAnalysis(providers.Default(), testMapper(), nil)
	rows := usageByLabel(pa.MajorProviders(pdns.NewView(s.Snapshot()), 2020))
	cf := rows["cloudflare.com"]
	if cf.Domains != 1 || cf.SingleProvider != 0 {
		t.Errorf("mixed domain usage = %+v", cf)
	}
}
