package authserver

import (
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/obs"
)

// TransportClass distinguishes the serving transports for cache keying
// and payload-limit policy. UDP answers are bounded by the negotiated
// EDNS0 buffer; TCP answers by the 16-bit length prefix.
type TransportClass uint8

// Transport classes.
const (
	TransportUDP TransportClass = iota
	TransportTCP
)

// String returns the lowercase transport mnemonic.
func (tc TransportClass) String() string {
	if tc == TransportTCP {
		return "tcp"
	}
	return "udp"
}

// cacheKey identifies one cacheable rendered response. Beyond the
// (qname, qtype, transport-class) triple the issue calls for, the key
// folds in the *effective* payload limit and whether the query carried
// an OPT record: two UDP queries advertising different EDNS0 buffers can
// legitimately receive different bytes (different truncation points,
// OPT echo present or absent), so they must not share an entry. Queries
// whose advertised sizes clamp to the same effective limit do share one.
type cacheKey struct {
	name  dnsname.Name
	qtype dnswire.Type
	class TransportClass
	limit uint16
	opt   bool
}

// cacheEntry is a rendered response template: the wire bytes encoded
// with ID zero and the RD bit clear, plus its expiry. A hit copies the
// template and patches the two ID bytes and the RD bit back in — the
// only header state that varies between queries sharing a key.
type cacheEntry struct {
	template []byte
	expires  int64 // unixNano
}

// cacheFlight coalesces concurrent renders of one key, the resolver's
// singleflight idiom reduced to the server's needs (no context, no
// bound: rendering is local and fast, so followers always wait).
type cacheFlight struct {
	done     chan struct{}
	template []byte // nil when the render proved uncacheable
	ok       bool
}

// cacheShards keeps shard-lock contention negligible at serving
// parallelism, mirroring the resolver-side cache layout.
const cacheShards = 32

// maxCacheTTL caps how long a rendered response may be served, guarding
// against zones authored with absurd TTLs pinning stale data.
const maxCacheTTL = 24 * time.Hour

type cacheShard struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	flights map[cacheKey]*cacheFlight
}

// ResponseCache is a sharded, singleflight-protected, TTL-aware cache of
// rendered wire responses. It sits between decode and render on the
// serving hot path: a hit costs one shard-map lookup and one template
// copy, with zero allocations once the destination buffer has warmed up.
//
// Entries expire at the minimum TTL of the records in the rendered
// response (OPT pseudo-records excluded — their TTL field is flag
// storage, not a lifetime). Responses carrying no real records (FORMERR,
// REFUSED, NOTIMP, behaviour-injected failures) have no defined lifetime
// and are never cached. Expired entries are evicted lazily on lookup and
// in bulk by SweepExpired.
type ResponseCache struct {
	shards [cacheShards]cacheShard

	// now is the clock, swappable in tests to force expiry.
	now func() time.Time

	metricsOnce sync.Once
	hits        *obs.Counter
	misses      *obs.Counter
	coalesced   *obs.Counter
	evictions   *obs.Counter
}

// NewResponseCache returns an empty cache.
func NewResponseCache() *ResponseCache {
	c := &ResponseCache{now: time.Now}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
		c.shards[i].flights = make(map[cacheKey]*cacheFlight)
	}
	return c
}

// AttachRegistry resolves the cache's counters from r. First attachment
// wins, matching the package-wide metrics idiom; later calls no-op so a
// cache shared between servers reports to one registry.
func (c *ResponseCache) AttachRegistry(r *obs.Registry) {
	c.metricsOnce.Do(func() {
		c.hits = r.Counter("authserver_cache_hits_total")
		c.misses = r.Counter("authserver_cache_misses_total")
		c.coalesced = r.Counter("authserver_cache_coalesced_total")
		c.evictions = r.Counter("authserver_cache_evictions_total")
	})
}

// shardFor hashes the key's name (FNV-1a, written out so the hot path
// never allocates a hasher) and folds in the discriminating fields.
func (c *ResponseCache) shardFor(k cacheKey) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(k.name); i++ {
		h = (h ^ uint32(k.name[i])) * 16777619
	}
	h ^= uint32(k.qtype)<<16 | uint32(k.limit)
	h ^= uint32(k.class) << 8
	if k.opt {
		h ^= 1 << 9
	}
	return &c.shards[h%cacheShards]
}

// get returns the live template for k, or nil. Expired entries are
// evicted on the way out.
func (c *ResponseCache) get(k cacheKey) []byte {
	sh := c.shardFor(k)
	now := c.now().UnixNano()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[k]
	if !ok {
		c.misses.Inc()
		return nil
	}
	if now >= e.expires {
		delete(sh.entries, k)
		c.evictions.Inc()
		c.misses.Inc()
		return nil
	}
	c.hits.Inc()
	return e.template
}

// do renders the template for k via render and stores it when render
// reports it cacheable (ttl > 0). Callers invoke do only after get
// missed — get carries the hit/miss accounting — and do re-checks under
// the shard lock, so concurrent callers for one key coalesce onto a
// single render. ok reports whether the template was (already) stored.
//
// render must return a heap-owned template (no arena aliasing): the
// bytes outlive the rendering exchange.
func (c *ResponseCache) do(k cacheKey, render func() ([]byte, time.Duration)) (template []byte, ok bool) {
	// Own the key's name before it can be stored in a map: on the serving
	// path it aliases the decode arena's scratch until this point.
	k.name = k.name.Own()
	sh := c.shardFor(k)
	sh.mu.Lock()
	if e, live := sh.entries[k]; live && c.now().UnixNano() < e.expires {
		// Raced with another renderer that already finished.
		sh.mu.Unlock()
		c.hits.Inc()
		return e.template, true
	}
	if f, inflight := sh.flights[k]; inflight {
		sh.mu.Unlock()
		c.coalesced.Inc()
		<-f.done
		return f.template, f.ok
	}
	f := &cacheFlight{done: make(chan struct{})}
	sh.flights[k] = f
	sh.mu.Unlock()

	tmpl, ttl := render()
	if ttl > maxCacheTTL {
		ttl = maxCacheTTL
	}
	cacheable := tmpl != nil && ttl > 0
	f.template, f.ok = tmpl, cacheable

	sh.mu.Lock()
	delete(sh.flights, k)
	if cacheable {
		sh.entries[k] = &cacheEntry{
			template: tmpl,
			expires:  c.now().Add(ttl).UnixNano(),
		}
	}
	sh.mu.Unlock()
	close(f.done)
	return tmpl, cacheable
}

// Len returns the number of live entries (expired-but-unswept entries
// included; Len is a diagnostic, not a promise).
func (c *ResponseCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// SweepExpired evicts every expired entry and reports how many went.
// Serving loops may call it periodically; correctness never depends on
// it because get evicts lazily.
func (c *ResponseCache) SweepExpired() int {
	now := c.now().UnixNano()
	evicted := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if now >= e.expires {
				delete(sh.entries, k)
				evicted++
			}
		}
		sh.mu.Unlock()
	}
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
	return evicted
}

// minResponseTTL computes the cache lifetime of a rendered response: the
// minimum TTL across all sections, excluding OPT pseudo-records (their
// TTL packs EDNS0 flags, not seconds). A response with no real records
// returns 0, meaning uncacheable.
func minResponseTTL(m *dnswire.Message) time.Duration {
	minTTL := uint32(0)
	seen := false
	scan := func(rrs []dnswire.RR) {
		for _, rr := range rrs {
			if rr.Type() == dnswire.TypeOPT {
				continue
			}
			if !seen || rr.TTL < minTTL {
				minTTL, seen = rr.TTL, true
			}
		}
	}
	scan(m.Answers)
	scan(m.Authority)
	scan(m.Additional)
	if !seen {
		return 0
	}
	return time.Duration(minTTL) * time.Second
}
