package authserver

import (
	"testing"
	"time"

	"govdns/internal/dnswire"
)

// TestServeCachedZeroAlloc pins the acceptance bar for the cached UDP
// hot path: once the cache entry, arena pool, and destination buffer
// have warmed up, answering a repeated query allocates nothing.
func TestServeCachedZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	s.SetCache(NewResponseCache())

	wire := confWire(t, "www.gov.br.", dnswire.TypeA, 42, true, 1232)
	dst := make([]byte, 0, 1024)
	for i := 0; i < 4; i++ { // warm: cache entry stored, arena pooled
		out, ok := s.HandleWireAppend(dst[:0], wire)
		if !ok {
			t.Fatal("warmup query dropped")
		}
		dst = out
	}
	allocs := testing.AllocsPerRun(200, func() {
		out, ok := s.HandleWireAppend(dst[:0], wire)
		if !ok {
			t.Fatal("query dropped")
		}
		dst = out
	})
	if allocs != 0 {
		t.Errorf("cached UDP hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestServeQPSSmoke is the cheap serving-regression tier in make check:
// a few thousand in-memory exchanges must clear a floor that is orders
// of magnitude below real throughput (so the test never flakes on slow
// CI) but catches a serving path that stopped being O(1)-ish per query.
func TestServeQPSSmoke(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	s.SetCache(NewResponseCache())

	wire := confWire(t, "www.gov.br.", dnswire.TypeA, 7, false, 0)
	const n = 5000
	dst := make([]byte, 0, 1024)
	start := time.Now()
	for i := 0; i < n; i++ {
		out, ok := s.HandleWireAppend(dst[:0], wire)
		if !ok {
			t.Fatal("query dropped")
		}
		dst = out
	}
	elapsed := time.Since(start)
	qps := float64(n) / elapsed.Seconds()
	if qps < 10_000 {
		t.Errorf("cached in-memory serving at %.0f qps, below the 10k smoke floor", qps)
	}
	t.Logf("cached in-memory smoke: %.0f qps over %d queries", qps, n)
}
