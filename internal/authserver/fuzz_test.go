package authserver

// FuzzTCPFraming throws arbitrary byte streams at the TCP serving loop:
// torn length prefixes, zero-length messages, oversized frames cut off
// by EOF, mid-stream garbage between valid queries. Whatever arrives,
// the server must not panic, must return every pooled arena, and must
// keep its output stream well-framed (each response a length-prefixed
// message that decodes) — the pipeline never desynchronizes.

import (
	"bytes"
	"net"
	"testing"
	"time"

	"govdns/internal/dnswire"
)

// streamConn is a deterministic net.Conn for fuzzing: reads drain a
// fixed input, writes accumulate in a buffer, deadlines no-op, and
// everything runs synchronously on the calling goroutine — no pipe
// half-close semantics to make iteration order matter.
type streamConn struct {
	in  *bytes.Reader
	out bytes.Buffer
}

func (c *streamConn) Read(p []byte) (int, error)  { return c.in.Read(p) }
func (c *streamConn) Write(p []byte) (int, error) { return c.out.Write(p) }
func (c *streamConn) Close() error                { return nil }

type streamAddr struct{}

func (streamAddr) Network() string { return "stream" }
func (streamAddr) String() string  { return "stream" }

func (c *streamConn) LocalAddr() net.Addr              { return streamAddr{} }
func (c *streamConn) RemoteAddr() net.Addr             { return streamAddr{} }
func (c *streamConn) SetDeadline(time.Time) error      { return nil }
func (c *streamConn) SetReadDeadline(time.Time) error  { return nil }
func (c *streamConn) SetWriteDeadline(time.Time) error { return nil }

// frame wraps msg in a 2-byte length prefix.
func frame(msg []byte) []byte {
	out := make([]byte, 0, 2+len(msg))
	out = append(out, byte(len(msg)>>8), byte(len(msg)))
	return append(out, msg...)
}

func FuzzTCPFraming(f *testing.F) {
	valid, err := dnswire.Encode(dnswire.NewQuery(7, "www.gov.br.", dnswire.TypeA))
	if err != nil {
		f.Fatal(err)
	}
	axfr, err := dnswire.Encode(dnswire.NewQuery(8, "gov.br.", dnswire.TypeAXFR))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(frame(valid))
	f.Add(append(frame(valid), frame(valid)...))               // pipelined pair
	f.Add(frame(valid)[:1])                                    // torn prefix
	f.Add(frame(valid)[:5])                                    // torn body
	f.Add([]byte{0x00, 0x00})                                  // zero-length frame
	f.Add(append([]byte{0x00, 0x00}, frame(valid)...))         // dead frame, then live query
	f.Add([]byte{0xFF, 0xFF, 0xDE, 0xAD})                      // oversized claim, tiny body
	f.Add(frame([]byte{0xAB}))                                 // sub-header garbage frame
	f.Add(frame(make([]byte, 20)))                             // header-shaped zeros
	f.Add(frame(axfr))                                         // zone transfer
	f.Add(append(frame([]byte("garbage!!")), frame(valid)...)) // garbage, then live query

	f.Fuzz(func(t *testing.T, stream []byte) {
		pool := dnswire.NewPool()
		s := New("ns1.gov.br.")
		z := testZone(t)
		s.AddZone(z)
		s.SetWirePool(pool)
		s.SetCache(NewResponseCache())

		conn := &streamConn{in: bytes.NewReader(stream)}
		s.ServeTCPConn(conn, 0)

		// Every arena checked out during the stream came back.
		st := pool.Stats()
		if st.Checkouts != st.Recycles+st.Discards {
			t.Fatalf("arena leak: %d checkouts vs %d recycles + %d discards",
				st.Checkouts, st.Recycles, st.Discards)
		}

		// The output is a clean sequence of length-prefixed messages that
		// decode — a desynchronized pipeline would break the framing or
		// emit undecodable bytes.
		out := conn.out.Bytes()
		for len(out) > 0 {
			if len(out) < 2 {
				t.Fatalf("trailing partial length prefix: % x", out)
			}
			n := int(out[0])<<8 | int(out[1])
			if len(out) < 2+n {
				t.Fatalf("frame claims %d bytes, only %d remain", n, len(out)-2)
			}
			msg, err := dnswire.Decode(out[2 : 2+n])
			if err != nil {
				t.Fatalf("response frame does not decode: %v", err)
			}
			if !msg.Header.Response {
				t.Fatal("response frame without QR bit")
			}
			out = out[2+n:]
		}
	})
}

// TestTCPFramingSeedsDirect runs the fuzz scenarios that pin exact
// expectations tighter than the fuzz invariants: dead frames and garbage
// must not poison subsequent pipelined queries.
func TestTCPFramingResyncAfterGarbage(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))

	valid, err := dnswire.Encode(dnswire.NewQuery(7, "www.gov.br.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	badHeader := make([]byte, 12)
	badHeader[0], badHeader[1] = 0xBE, 0xEF
	badHeader[5] = 1 // claims one question, carries none: decode fails past the header

	var stream []byte
	stream = append(stream, 0x00, 0x00)                    // zero-length frame
	stream = append(stream, frame([]byte("garbage!!"))...) // framed garbage (<12 B: dropped)
	stream = append(stream, frame(badHeader)...)           // readable header, torn body (FORMERR)
	stream = append(stream, frame(valid)...)               // live query must still answer

	conn := &streamConn{in: bytes.NewReader(stream)}
	s.ServeTCPConn(conn, 0)

	var msgs []*dnswire.Message
	r := bytes.NewReader(conn.out.Bytes())
	for {
		buf, err := readFrame(r, nil)
		if err != nil {
			if r.Len() == 0 {
				break
			}
			t.Fatalf("readFrame: %v", err)
		}
		m, err := dnswire.Decode(buf)
		if err != nil {
			t.Fatalf("decode response: %v", err)
		}
		msgs = append(msgs, m)
		if r.Len() == 0 {
			break
		}
	}
	if len(msgs) != 2 {
		t.Fatalf("responses = %d, want 2 (FORMERR + answer)", len(msgs))
	}
	if msgs[0].Header.RCode != dnswire.RCodeFormErr {
		t.Errorf("first response RCode = %s, want FORMERR", msgs[0].Header.RCode)
	}
	if msgs[1].Header.ID != 7 || msgs[1].Header.RCode != dnswire.RCodeNoError || len(msgs[1].Answers) != 1 {
		t.Errorf("post-garbage query answered wrong: %s", msgs[1])
	}
}
