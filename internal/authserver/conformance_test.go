package authserver

// The wire-conformance differential suite: a table-driven corpus of
// queries served through every deployment variation the tier supports,
// with answers pinned byte-identical across the variations that must not
// change them — UDP vs TCP (modulo TC/OPT effects), cache-on vs
// cache-off, and primary vs AXFR-synced secondary. The same
// digest-pinning discipline the scan pipeline uses, applied at the
// serving boundary.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/obs"
	"govdns/internal/zone"
)

// conformanceZone is testZone plus an RRset big enough to overflow both
// the classic 512-byte UDP limit and the 1232-byte EDNS0 default, while
// fitting a 4096-byte buffer: the TC-fallback pivot of the suite.
func conformanceZone(t *testing.T) *zone.Zone {
	t.Helper()
	z := testZone(t)
	for i := 0; i < 25; i++ {
		z.MustAdd(dnswire.RR{
			Name: "big.gov.br.", Class: dnswire.ClassIN, TTL: 600,
			Data: dnswire.TXTData{Strings: []string{fmt.Sprintf(
				"v=conformance; record %02d padded to make the rrset overflow a udp payload", i)}},
		})
	}
	return z
}

// canonicalZone rebuilds z with records inserted in Records()' canonical
// order, so per-RRset answer order matches what an AXFR-synced secondary
// reconstructs. Conformance fixtures serve the canonical form on every
// server under comparison.
func canonicalZone(t *testing.T, z *zone.Zone) *zone.Zone {
	t.Helper()
	out := zone.New(z.Origin())
	for _, rr := range z.Records() {
		out.MustAdd(rr)
	}
	return out
}

// conformanceCorpus covers every row of the serving decision table plus
// the oversized RRset.
var conformanceCorpus = []struct {
	desc  string
	name  dnsname.Name
	qtype dnswire.Type
}{
	{"answer", "www.gov.br.", dnswire.TypeA},
	{"apex NS", "gov.br.", dnswire.TypeNS},
	{"apex SOA", "gov.br.", dnswire.TypeSOA},
	{"referral", "www.city.gov.br.", dnswire.TypeA},
	{"nodata", "www.gov.br.", dnswire.TypeMX},
	{"nxdomain", "missing.gov.br.", dnswire.TypeA},
	{"refused off-zone", "example.com.", dnswire.TypeA},
	{"oversized rrset", "big.gov.br.", dnswire.TypeTXT},
}

// ednsVariants are the client-advertisement shapes each corpus query is
// sent with: no OPT, the flag-day buffer, and a buffer above the server
// cap (4096 in this suite) to exercise clamping.
var ednsVariants = []uint16{0, 1232, 4096, 8192}

// confWire encodes one corpus query with the given ID, RD flag, and
// EDNS0 advertisement (0 = no OPT record).
func confWire(t *testing.T, name dnsname.Name, qtype dnswire.Type, id uint16, rd bool, edns uint16) []byte {
	t.Helper()
	q := dnswire.NewQuery(id, name, qtype)
	q.Header.RecursionDesired = rd
	if edns > 0 {
		q.Additional = append(q.Additional, dnswire.OPTRecord(edns))
	}
	wire, err := dnswire.Encode(q)
	if err != nil {
		t.Fatalf("encode query %s %s: %v", name, qtype, err)
	}
	return wire
}

// newConformanceServer builds a healthy server on the canonical fixture
// zone with a 4096-byte EDNS cap (so the 4096 variant can lift answers
// past 1232 and the 8192 variant exercises clamping).
func newConformanceServer(t *testing.T) *Server {
	t.Helper()
	s := New("ns1.gov.br.")
	s.AddZone(canonicalZone(t, conformanceZone(t)))
	s.SetEDNSBufSize(4096)
	return s
}

// exchangeTCP sends one framed query to a live TCP listener and returns
// the response message bytes.
func exchangeTCP(t *testing.T, addr string, wire []byte) []byte {
	t.Helper()
	tt := &TCPTransport{}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		t.Fatalf("split %s: %v", addr, err)
	}
	ip := netip.MustParseAddr(host)
	var p int
	if _, err := fmt.Sscan(port, &p); err != nil {
		t.Fatalf("port %s: %v", port, err)
	}
	tt.PortOverride = map[netip.Addr]int{ip: p}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := tt.Exchange(ctx, ip, wire)
	if err != nil {
		t.Fatalf("tcp exchange: %v", err)
	}
	return resp
}

// TestConformanceUDPvsTCP pins the transport differential: when the UDP
// answer is not truncated, TCP returns the same bytes; when it is, the
// UDP answer decodes cleanly with TC set within the negotiated limit and
// the TCP answer carries the complete RRset.
func TestConformanceUDPvsTCP(t *testing.T) {
	s := newConformanceServer(t)
	tcpSrv, err := ListenTCP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tcpSrv.Close() }()

	for _, q := range conformanceCorpus {
		for _, edns := range ednsVariants {
			name := fmt.Sprintf("%s/edns=%d", q.desc, edns)
			wire := confWire(t, q.name, q.qtype, 77, true, edns)
			udpResp := s.HandleWire(wire)
			if udpResp == nil {
				t.Fatalf("%s: UDP response dropped", name)
			}
			tcpResp := exchangeTCP(t, tcpSrv.Addr().String(), wire)

			udpMsg, err := dnswire.Decode(udpResp)
			if err != nil {
				t.Fatalf("%s: UDP response does not decode: %v", name, err)
			}
			tcpMsg, err := dnswire.Decode(tcpResp)
			if err != nil {
				t.Fatalf("%s: TCP response does not decode: %v", name, err)
			}
			if tcpMsg.Header.Truncated {
				t.Errorf("%s: TCP response truncated", name)
			}

			limit := payloadLimit(TransportUDP, edns > 0, edns, 4096)
			if len(udpResp) > limit {
				t.Errorf("%s: UDP response %d bytes exceeds negotiated limit %d",
					name, len(udpResp), limit)
			}
			if wantOPT := edns > 0; wantOPT {
				if size, ok := udpMsg.EDNS(); !ok || size != 4096 {
					t.Errorf("%s: UDP OPT echo = (%d, %v), want (4096, true)", name, size, ok)
				}
				if size, ok := tcpMsg.EDNS(); !ok || size != 4096 {
					t.Errorf("%s: TCP OPT echo = (%d, %v), want (4096, true)", name, size, ok)
				}
			} else if _, ok := udpMsg.EDNS(); ok {
				t.Errorf("%s: unsolicited OPT in UDP response", name)
			}

			if !udpMsg.Header.Truncated {
				if !bytes.Equal(udpResp, tcpResp) {
					t.Errorf("%s: UDP and TCP bytes differ without truncation\nudp: %s\ntcp: %s",
						name, udpMsg, tcpMsg)
				}
				continue
			}
			// Truncated UDP: the TCP retry must carry strictly more
			// records, and the UDP prefix must match the TCP answer
			// record-for-record.
			if len(tcpMsg.Answers) <= len(udpMsg.Answers) {
				t.Errorf("%s: TCP answers %d not beyond truncated UDP answers %d",
					name, len(tcpMsg.Answers), len(udpMsg.Answers))
			}
			for i, rr := range udpMsg.Answers {
				if !rr.Equal(tcpMsg.Answers[i]) {
					t.Errorf("%s: truncated answer %d diverges from TCP: %v != %v",
						name, i, rr, tcpMsg.Answers[i])
				}
			}
		}
	}
}

// TestConformanceOversizedSetsTC is the acceptance pivot spelled out:
// the oversized RRset over plain UDP sets TC; the same query retried
// over TCP returns the complete response.
func TestConformanceOversizedSetsTC(t *testing.T) {
	s := newConformanceServer(t)
	tcpSrv, err := ListenTCP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tcpSrv.Close() }()

	wire := confWire(t, "big.gov.br.", dnswire.TypeTXT, 9001, false, 0)
	udpMsg, err := dnswire.Decode(s.HandleWire(wire))
	if err != nil {
		t.Fatalf("UDP response does not decode: %v", err)
	}
	if !udpMsg.Header.Truncated {
		t.Fatal("oversized UDP answer did not set TC")
	}
	tcpMsg, err := dnswire.Decode(exchangeTCP(t, tcpSrv.Addr().String(), wire))
	if err != nil {
		t.Fatalf("TCP response does not decode: %v", err)
	}
	if tcpMsg.Header.Truncated {
		t.Error("TCP retry still truncated")
	}
	if got := len(tcpMsg.Answers); got != 25 {
		t.Errorf("TCP retry answers = %d, want the complete 25-record RRset", got)
	}
}

// TestConformanceCacheOnVsOff pins the cache differential: a caching
// server must emit byte-identical responses to a cache-less twin on
// every corpus query, on the first pass (misses) and the second (hits),
// across varying transaction IDs and RD flags.
func TestConformanceCacheOnVsOff(t *testing.T) {
	plain := newConformanceServer(t)
	cached := newConformanceServer(t)
	reg := obs.NewRegistry()
	cc := NewResponseCache()
	cc.AttachRegistry(reg)
	cached.SetCache(cc)

	passes := []struct {
		id uint16
		rd bool
	}{{101, false}, {202, true}, {303, false}}
	for pass, hdr := range passes {
		for _, q := range conformanceCorpus {
			for _, edns := range ednsVariants {
				name := fmt.Sprintf("pass%d/%s/edns=%d", pass, q.desc, edns)
				wire := confWire(t, q.name, q.qtype, hdr.id, hdr.rd, edns)
				a := plain.HandleWire(wire)
				b := cached.HandleWire(wire)
				if !bytes.Equal(a, b) {
					t.Errorf("%s: cache-on and cache-off bytes differ", name)
				}
			}
		}
	}
	if n := cc.Len(); n == 0 {
		t.Error("cache holds no entries after the corpus ran")
	}
	if hits := reg.Counter("authserver_cache_hits_total").Load(); hits == 0 {
		t.Error("cache registered no hits across repeated passes")
	}
	if misses := reg.Counter("authserver_cache_misses_total").Load(); misses == 0 {
		t.Error("cache registered no misses on the first pass")
	}
}

// TestConformancePrimaryVsSecondary pins the replication differential: a
// secondary bootstrapped over AXFR answers every corpus query with the
// same bytes as the primary it synced from.
func TestConformancePrimaryVsSecondary(t *testing.T) {
	primary := newConformanceServer(t)
	tcpSrv, err := ListenTCP("127.0.0.1:0", primary)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tcpSrv.Close() }()

	secondary := New("ns2.gov.br.")
	secondary.SetEDNSBufSize(4096)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := SyncZone(ctx, tcpSrv.Addr().String(), "gov.br.", secondary); err != nil {
		t.Fatalf("SyncZone: %v", err)
	}

	z, ok := secondary.ZoneByOrigin("gov.br.")
	if !ok {
		t.Fatal("secondary did not install the zone")
	}
	pz, _ := primary.ZoneByOrigin("gov.br.")
	if z.Len() != pz.Len() {
		t.Fatalf("secondary zone has %d records, primary %d", z.Len(), pz.Len())
	}

	for _, q := range conformanceCorpus {
		for _, edns := range ednsVariants {
			name := fmt.Sprintf("%s/edns=%d", q.desc, edns)
			wire := confWire(t, q.name, q.qtype, 55, false, edns)
			a := primary.HandleWire(wire)
			b := secondary.HandleWire(wire)
			if !bytes.Equal(a, b) {
				t.Errorf("%s: primary and AXFR-synced secondary bytes differ", name)
			}
		}
	}
}

// TestAXFRRefusedOffPath pins the transfer authorization table: AXFR
// over UDP, for an unhosted origin, or for a non-origin name inside the
// zone is REFUSED rather than streamed.
func TestAXFRRefusedOffPath(t *testing.T) {
	s := newConformanceServer(t)
	tcpSrv, err := ListenTCP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tcpSrv.Close() }()

	cases := []struct {
		desc string
		resp []byte
	}{
		{"axfr over udp", s.HandleWire(confWire(t, "gov.br.", dnswire.TypeAXFR, 5, false, 0))},
		{"axfr unhosted origin", exchangeTCP(t, tcpSrv.Addr().String(),
			confWire(t, "example.com.", dnswire.TypeAXFR, 6, false, 0))},
		{"axfr non-origin name", exchangeTCP(t, tcpSrv.Addr().String(),
			confWire(t, "www.gov.br.", dnswire.TypeAXFR, 7, false, 0))},
	}
	for _, c := range cases {
		m, err := dnswire.Decode(c.resp)
		if err != nil {
			t.Fatalf("%s: response does not decode: %v", c.desc, err)
		}
		if m.Header.RCode != dnswire.RCodeRefused {
			t.Errorf("%s: RCode = %s, want REFUSED", c.desc, m.Header.RCode)
		}
		if len(m.Answers) != 0 {
			t.Errorf("%s: %d answer records on a refused transfer", c.desc, len(m.Answers))
		}
	}
}

// TestTCPPipelining sends the whole corpus down one connection before
// reading anything back, then checks responses arrive complete, in
// order, and identical to their one-shot forms.
func TestTCPPipelining(t *testing.T) {
	s := newConformanceServer(t)
	tcpSrv, err := ListenTCP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tcpSrv.Close() }()

	conn, err := net.DialTimeout("tcp", tcpSrv.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))

	var queries [][]byte
	var burst []byte
	for i, q := range conformanceCorpus {
		wire := confWire(t, q.name, q.qtype, uint16(1000+i), false, 1232)
		queries = append(queries, wire)
		burst = append(burst, byte(len(wire)>>8), byte(len(wire)))
		burst = append(burst, wire...)
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatalf("burst write: %v", err)
	}
	for i, q := range conformanceCorpus {
		resp, err := readFrame(conn, nil)
		if err != nil {
			t.Fatalf("response %d (%s): %v", i, q.desc, err)
		}
		m, err := dnswire.Decode(resp)
		if err != nil {
			t.Fatalf("response %d (%s) does not decode: %v", i, q.desc, err)
		}
		if m.Header.ID != uint16(1000+i) {
			t.Fatalf("response %d has ID %d, want %d: pipeline reordered", i, m.Header.ID, 1000+i)
		}
		oneshot := exchangeTCP(t, tcpSrv.Addr().String(), queries[i])
		if !bytes.Equal(resp, oneshot) {
			t.Errorf("response %d (%s): pipelined bytes differ from one-shot", i, q.desc)
		}
	}
}
