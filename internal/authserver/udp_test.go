package authserver

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/dnswire"
)

func TestUDPServerEndToEnd(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	udp, err := ListenUDP("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer func() {
		if err := udp.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	port := udp.Addr().(*net.UDPAddr).Port
	transport := &UDPTransport{PortOverride: map[netip.Addr]int{
		netip.MustParseAddr("127.0.0.1"): port,
	}}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	wire, err := dnswire.Encode(dnswire.NewQuery(7, "www.gov.br.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := transport.Exchange(ctx, netip.MustParseAddr("127.0.0.1"), wire)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if resp.Header.ID != 7 || len(resp.Answers) != 1 {
		t.Errorf("unexpected response: %s", resp)
	}
}

func TestUDPServerCloseIsIdempotent(t *testing.T) {
	s := New("ns1.example.")
	udp, err := ListenUDP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := udp.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := udp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestUDPTransportTimeout(t *testing.T) {
	// No server listening: Exchange must respect the context deadline.
	transport := &UDPTransport{PortOverride: map[netip.Addr]int{
		netip.MustParseAddr("127.0.0.1"): 1, // port 1: nothing there
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := transport.Exchange(ctx, netip.MustParseAddr("127.0.0.1"), []byte{0, 0})
	if err == nil {
		t.Fatal("Exchange succeeded against a dead port")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Exchange took %v, deadline not honored", elapsed)
	}
}

// TestUDPServerLoopZeroAlloc is the allocs/op regression gate for the
// UDP read loop: once the datagram pool, the loop-owned response
// buffer, and the server's cache/arena pools have warmed up, a full
// client round trip over a real loopback socket must not allocate.
// AllocsPerRun counts process-wide mallocs, so the gate holds only
// because every party — the read loop (pooled receive buffers, reused
// response buffer, AddrPort read/write APIs), the cached serving path,
// and the probe client below — is allocation-free in steady state.
func TestUDPServerLoopZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	s.SetCache(NewResponseCache())
	udp, err := ListenUDP("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer func() { _ = udp.Close() }()
	srv, err := netip.ParseAddrPort(udp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	wire := confWire(t, "www.gov.br.", dnswire.TypeA, 42, true, 1232)
	resp := make([]byte, udpBufSize)
	roundTrip := func() {
		if _, err := conn.WriteToUDPAddrPort(wire, srv); err != nil {
			t.Fatalf("send: %v", err)
		}
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, _, err := conn.ReadFromUDPAddrPort(resp)
		if err != nil {
			t.Fatalf("receive: %v", err)
		}
		if n < 12 || resp[0] != wire[0] || resp[1] != wire[1] {
			t.Fatalf("bad response: %d bytes", n)
		}
	}
	for i := 0; i < 50; i++ { // warm: datagram pool, response buffer, cache entry
		roundTrip()
	}
	if allocs := testing.AllocsPerRun(200, roundTrip); allocs != 0 {
		t.Errorf("UDP serving loop allocates %.2f/op in steady state, want 0", allocs)
	}
}
