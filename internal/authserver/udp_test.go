package authserver

import (
	"context"
	"net"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/dnswire"
)

func TestUDPServerEndToEnd(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	udp, err := ListenUDP("127.0.0.1:0", s)
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer func() {
		if err := udp.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	port := udp.Addr().(*net.UDPAddr).Port
	transport := &UDPTransport{PortOverride: map[netip.Addr]int{
		netip.MustParseAddr("127.0.0.1"): port,
	}}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	wire, err := dnswire.Encode(dnswire.NewQuery(7, "www.gov.br.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	respWire, err := transport.Exchange(ctx, netip.MustParseAddr("127.0.0.1"), wire)
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if resp.Header.ID != 7 || len(resp.Answers) != 1 {
		t.Errorf("unexpected response: %s", resp)
	}
}

func TestUDPServerCloseIsIdempotent(t *testing.T) {
	s := New("ns1.example.")
	udp, err := ListenUDP("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := udp.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := udp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestUDPTransportTimeout(t *testing.T) {
	// No server listening: Exchange must respect the context deadline.
	transport := &UDPTransport{PortOverride: map[netip.Addr]int{
		netip.MustParseAddr("127.0.0.1"): 1, // port 1: nothing there
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := transport.Exchange(ctx, netip.MustParseAddr("127.0.0.1"), []byte{0, 0})
	if err == nil {
		t.Fatal("Exchange succeeded against a dead port")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("Exchange took %v, deadline not honored", elapsed)
	}
}
