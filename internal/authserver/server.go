// Package authserver implements an authoritative DNS nameserver over the
// zone model. A server hosts any number of zones and answers wire-format
// queries with RFC 1034 semantics: authoritative answers, referrals with
// glue, NXDOMAIN/NODATA with SOA, and REFUSED for zones it does not host.
//
// Servers also model the failure behaviours the study measures in the
// wild: unresponsive hosts (lame delegations), servers that return
// SERVFAIL or REFUSED, servers still serving stale zone copies, and
// parking services that answer every query with their own addresses.
package authserver

import (
	"fmt"
	"net/netip"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/zone"
)

// Behavior describes how a server treats queries.
type Behavior int

// Server behaviours observed (and injected) by the study.
const (
	// BehaviorHealthy answers normally from hosted zones.
	BehaviorHealthy Behavior = iota + 1
	// BehaviorUnresponsive drops every query (no response at all). This
	// is the signature of a fully lame nameserver.
	BehaviorUnresponsive
	// BehaviorServFail returns SERVFAIL to every query, as seen from
	// misconfigured or overloaded servers.
	BehaviorServFail
	// BehaviorRefused returns REFUSED to every query — a server that
	// exists but no longer serves the zone (a partially lame delegation).
	BehaviorRefused
	// BehaviorParking answers *any* query authoritatively with the
	// parking target address, the behaviour of expired-domain parking
	// services that make dangling NS records exploitable.
	BehaviorParking
)

// String returns a short mnemonic for b.
func (b Behavior) String() string {
	switch b {
	case BehaviorHealthy:
		return "healthy"
	case BehaviorUnresponsive:
		return "unresponsive"
	case BehaviorServFail:
		return "servfail"
	case BehaviorRefused:
		return "refused"
	case BehaviorParking:
		return "parking"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// Server is one authoritative nameserver instance.
type Server struct {
	// Hostname is the NS-record name this server is known by, for
	// diagnostics; routing happens by address in the simulated network.
	Hostname dnsname.Name

	mu          sync.RWMutex
	behavior    Behavior
	zones       map[dnsname.Name]*zone.Zone
	parkingAddr netip.Addr
	pool        *dnswire.Pool
	cache       *ResponseCache
	ednsBufSize uint16
}

// New creates a healthy server with no zones, no response cache, and the
// default EDNS0 buffer cap.
func New(hostname dnsname.Name) *Server {
	return &Server{
		Hostname:    hostname,
		behavior:    BehaviorHealthy,
		zones:       make(map[dnsname.Name]*zone.Zone),
		ednsBufSize: dnswire.DefaultEDNSBufSize,
	}
}

// SetWirePool makes the server run its codec exchanges on p instead of
// the package-shared pool, so tests can observe arena checkout/recycle
// balance for one server in isolation.
func (s *Server) SetWirePool(p *dnswire.Pool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool = p
}

// SetCache installs (or, with nil, removes) a response cache. A cache
// may be shared between servers; keys never collide across zones because
// they carry the full qname.
func (s *Server) SetCache(c *ResponseCache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = c
}

// Cache returns the installed response cache, nil when caching is off.
func (s *Server) Cache() *ResponseCache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cache
}

// SetEDNSBufSize sets the server's EDNS0 payload cap: the size it
// advertises in echoed OPT records and the ceiling it clamps client
// advertisements to. Values below the classic 512-byte limit are raised
// to it — EDNS0 can only extend the protocol floor.
func (s *Server) SetEDNSBufSize(n uint16) {
	if n < dnswire.MaxUDPPayload {
		n = dnswire.MaxUDPPayload
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ednsBufSize = n
}

// SetBehavior switches the server's failure behaviour.
func (s *Server) SetBehavior(b Behavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.behavior = b
}

// Behavior returns the current behaviour.
func (s *Server) Behavior() Behavior {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.behavior
}

// SetParkingTarget sets the address returned for every query under
// BehaviorParking.
func (s *Server) SetParkingTarget(addr netip.Addr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.parkingAddr = addr
}

// AddZone makes the server authoritative for z. Adding a zone with an
// origin already hosted atomically replaces the previous copy — the
// mechanism AXFR-synced secondaries (SyncZone) use to install a fetched
// zone, and what tests use to model stale replicas by installing an
// older copy.
func (s *Server) AddZone(z *zone.Zone) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.zones[z.Origin()] = z
}

// DropZone removes the zone rooted at origin, modelling a provider that
// stopped serving a customer. The server then answers REFUSED for it.
func (s *Server) DropZone(origin dnsname.Name) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.zones, origin)
}

// ZoneByOrigin returns the hosted zone with exactly the given origin.
func (s *Server) ZoneByOrigin(origin dnsname.Name) (*zone.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	z, ok := s.zones[origin]
	return z, ok
}

// Zones returns the origins this server is authoritative for.
func (s *Server) Zones() []dnsname.Name {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dnsname.Name, 0, len(s.zones))
	for origin := range s.zones {
		out = append(out, origin)
	}
	return out
}

// zoneFor returns the hosted zone with the deepest origin at or above
// name. It walks the name's ancestors so the cost is O(labels), not
// O(zones) — shared servers host thousands of zones.
func (s *Server) zoneFor(name dnsname.Name) (*zone.Zone, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for cur := name; ; cur = cur.Parent() {
		if z, ok := s.zones[cur]; ok {
			return z, true
		}
		if cur.IsRoot() {
			return nil, false
		}
	}
}

// Handle answers a decoded query. It returns nil when the server drops
// the query (BehaviorUnresponsive), which the network layer turns into a
// timeout.
func (s *Server) Handle(query *dnswire.Message) *dnswire.Message {
	return s.respond(query, dnswire.NewResponse(query))
}

// respond fills the pre-built (empty, headers-only) response for query
// and returns it, or nil when the behaviour drops the query. Splitting
// construction from logic lets HandleWireAppend build the response in a
// codec arena slot while Handle keeps its heap-allocating contract.
func (s *Server) respond(query, resp *dnswire.Message) *dnswire.Message {
	s.mu.RLock()
	behavior := s.behavior
	parking := s.parkingAddr
	s.mu.RUnlock()

	switch behavior {
	case BehaviorUnresponsive:
		return nil
	case BehaviorServFail:
		resp.Header.RCode = dnswire.RCodeServFail
		return resp
	case BehaviorRefused:
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	case BehaviorParking:
		return s.parkingResponse(query, resp, parking)
	}

	// Decision table for a healthy server. Each query lands in exactly
	// one row, checked top to bottom:
	//
	//	condition                       | RCODE    | AA | sections
	//	--------------------------------+----------+----+---------------------------
	//	!=1 question / opcode != QUERY  | NOTIMP   |  0 | empty
	//	class != IN                     | NOTIMP   |  0 | empty
	//	qtype == AXFR (this path = UDP) | REFUSED  |  0 | empty (transfers are
	//	                                |          |    | TCP-only; see xfr.go)
	//	no hosted zone covers qname     | REFUSED  |  0 | empty (not authoritative)
	//	name in a delegated subtree     | NOERROR  |  0 | authority: child NS;
	//	                                |          |    | additional: glue (referral)
	//	name+type exist                 | NOERROR  |  1 | answer: RRset;
	//	                                |          |    | additional: A glue for NS/MX
	//	name exists, type doesn't       | NOERROR  |  1 | authority: SOA (NODATA)
	//	name doesn't exist              | NXDOMAIN |  1 | authority: SOA
	if len(query.Questions) != 1 || query.Header.Opcode != dnswire.OpcodeQuery {
		resp.Header.RCode = dnswire.RCodeNotImp
		return resp
	}
	q := query.Question()
	if q.Class != dnswire.ClassIN {
		resp.Header.RCode = dnswire.RCodeNotImp
		return resp
	}
	if q.Type == dnswire.TypeAXFR {
		// Zone transfers ride their own TCP streaming path (serveAXFR);
		// an AXFR arriving here came over UDP or out of band.
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}
	z, ok := s.zoneFor(q.Name)
	if !ok {
		resp.Header.RCode = dnswire.RCodeRefused
		return resp
	}

	ans := z.Authoritative(q.Name, q.Type)
	switch ans.Kind {
	case zone.KindAnswer:
		resp.Header.Authoritative = true
		resp.Answers = ans.Records
		resp.Additional = ans.Additional
	case zone.KindReferral:
		resp.Authority = ans.Authority
		resp.Additional = ans.Additional
	case zone.KindNoData:
		resp.Header.Authoritative = true
		resp.Authority = ans.Authority
	case zone.KindNXDomain:
		resp.Header.Authoritative = true
		resp.Header.RCode = dnswire.RCodeNXDomain
		resp.Authority = ans.Authority
	}
	return resp
}

// parkingResponse fabricates an authoritative answer pointing every name
// at the parking address. NS queries are answered with the parking
// server's own hostname, which is how hijacked resolutions propagate.
func (s *Server) parkingResponse(query, resp *dnswire.Message, parking netip.Addr) *dnswire.Message {
	resp.Header.Authoritative = true
	if len(query.Questions) != 1 {
		return resp
	}
	q := query.Question()
	switch q.Type {
	case dnswire.TypeA:
		if parking.IsValid() {
			resp.Answers = []dnswire.RR{{
				Name: q.Name, Class: dnswire.ClassIN, TTL: 300,
				Data: dnswire.AData{Addr: parking},
			}}
		}
	case dnswire.TypeNS:
		resp.Answers = []dnswire.RR{{
			Name: q.Name, Class: dnswire.ClassIN, TTL: 300,
			Data: dnswire.NSData{Host: s.Hostname},
		}}
	}
	return resp
}

// wirePool supplies the codec arenas every wire-level exchange runs on:
// the query decodes into an arena slot, the response is built in the
// arena's second slot sharing the query's question section, and the
// response encodes into the arena's output buffer before the one copy
// out. One pool for the package; servers share arenas freely.
var wirePool = dnswire.NewPool()

// HandleWire answers a wire-format query over the UDP transport class,
// exercising the full codec. A nil return means the query was dropped.
// Undecodable queries produce a FORMERR response when at least the
// 12-byte header was readable, and are dropped otherwise.
func (s *Server) HandleWire(wire []byte) []byte {
	out, ok := s.HandleWireAppend(nil, wire)
	if !ok {
		return nil
	}
	return out
}

// HandleWireAppend is HandleWire writing the response into dst
// (extending it as needed) instead of a fresh slice. It reports ok=false
// when the query was dropped. Serving loops that answer one query at a
// time reuse a single response buffer across packets; the codec itself
// runs entirely on a pooled arena.
func (s *Server) HandleWireAppend(dst, wire []byte) (out []byte, ok bool) {
	return s.serveWire(dst, wire, TransportUDP)
}

// payloadLimit is the response size ceiling for one exchange: the full
// 16-bit range over TCP; over UDP the classic 512 bytes, lifted to the
// client's advertised EDNS0 buffer clamped into [512, server cap].
func payloadLimit(tc TransportClass, hasOPT bool, advertised, serverCap uint16) int {
	if tc == TransportTCP {
		return dnswire.MaxTCPPayload
	}
	if !hasOPT {
		return dnswire.MaxUDPPayload
	}
	limit := min(advertised, serverCap)
	return int(max(limit, dnswire.MaxUDPPayload))
}

// serveWire is the transport-independent serving pipeline:
//
//	decode → negotiate EDNS0 → consult cache → render → size-bounded encode
//
// The decoded query borrows a pooled arena for the whole exchange; the
// response is built in the arena's second message slot and encoded into
// the arena's output buffer, so the only copy is the final append into
// dst. Cached exchanges skip render+encode entirely: the stored template
// is appended and its ID bytes and RD bit patched, which by construction
// yields the exact bytes the uncached path would have produced.
func (s *Server) serveWire(dst, wire []byte, tc TransportClass) (out []byte, ok bool) {
	s.mu.RLock()
	pool := s.pool
	cache := s.cache
	serverCap := s.ednsBufSize
	behavior := s.behavior
	s.mu.RUnlock()
	if pool == nil {
		pool = wirePool
	}

	a := pool.Get()
	defer a.Finish()
	query, err := a.Decode(wire)
	if err != nil {
		if len(wire) < 12 {
			return dst, false
		}
		var resp dnswire.Message
		resp.Header.ID = uint16(wire[0])<<8 | uint16(wire[1])
		resp.Header.Response = true
		resp.Header.RCode = dnswire.RCodeFormErr
		enc, err := a.Encode(&resp)
		if err != nil {
			return dst, false
		}
		return append(dst, enc...), true
	}

	advertised, hasOPT := query.EDNS()
	limit := payloadLimit(tc, hasOPT, advertised, serverCap)

	// Cacheable: a healthy server answering an ordinary single-question
	// IN query. Behaviour-injected failures, multi-question oddities, and
	// meta qtypes render fresh every time — they are cheap, rare, or
	// (AXFR) never answered on this path at all.
	if cache != nil && behavior == BehaviorHealthy &&
		len(query.Questions) == 1 && query.Header.Opcode == dnswire.OpcodeQuery {
		q := query.Question()
		if q.Class == dnswire.ClassIN && q.Type != dnswire.TypeAXFR {
			key := cacheKey{
				name:  q.Name,
				qtype: q.Type,
				class: tc,
				limit: uint16(limit),
				opt:   hasOPT,
			}
			// get before do: the hit path must not construct the render
			// closure, or every cached exchange would allocate it.
			tmpl := cache.get(key)
			if tmpl == nil {
				tmpl, _ = cache.do(key, func() ([]byte, time.Duration) {
					return s.renderTemplate(a, query, hasOPT, serverCap, limit)
				})
			}
			if tmpl != nil {
				return appendPatched(dst, tmpl, query.Header.ID, query.Header.RecursionDesired), true
			}
			return dst, false
		}
	}

	resp := s.respond(query, a.NewResponse(query))
	if resp == nil {
		return dst, false
	}
	if hasOPT {
		appendOPT(resp, serverCap)
	}
	enc, err := a.EncodeLimit(resp, limit)
	if err != nil {
		// Encoding our own response should never fail; drop the query
		// rather than panic in a server loop.
		return dst, false
	}
	return append(dst, enc...), true
}

// renderTemplate renders the cacheable form of the response to query:
// encoded with ID zero and the RD bit clear — the only bytes that vary
// between queries sharing a cache key — and copied off the arena so the
// template owns its storage. ttl==0 marks the render uncacheable.
func (s *Server) renderTemplate(a *dnswire.Arena, query *dnswire.Message, hasOPT bool, serverCap uint16, limit int) (template []byte, ttl time.Duration) {
	resp := s.respond(query, a.NewResponse(query))
	if resp == nil {
		return nil, 0
	}
	resp.Header.ID = 0
	resp.Header.RecursionDesired = false
	if hasOPT {
		appendOPT(resp, serverCap)
	}
	enc, err := a.EncodeLimit(resp, limit)
	if err != nil {
		return nil, 0
	}
	return append([]byte(nil), enc...), minResponseTTL(resp)
}

// appendOPT echoes an EDNS0 OPT record advertising the server's own
// payload cap. The full slice expression forces the append to copy away
// from any zone-owned backing array the additional section aliases.
func appendOPT(resp *dnswire.Message, serverCap uint16) {
	n := len(resp.Additional)
	resp.Additional = append(resp.Additional[:n:n], dnswire.OPTRecord(serverCap))
}

// appendPatched appends a cached template to dst and patches in the
// query's transaction ID (bytes 0-1) and RD bit (byte 2, bit 0). The
// template was rendered with both zeroed, so OR-ing the bit suffices.
func appendPatched(dst, template []byte, id uint16, rd bool) []byte {
	base := len(dst)
	out := append(dst, template...)
	out[base] = byte(id >> 8)
	out[base+1] = byte(id)
	if rd {
		out[base+2] |= 0x01
	}
	return out
}
