package authserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"unsafe"

	"govdns/internal/udpx"
)

// udpBufSize is the datagram buffer size shared by the server read loop
// and the dial transport's receive path.
const udpBufSize = 4096

// udpBuf is the pooled datagram buffer: a pointer to a fixed-size array
// checks in and out of the pool without allocating, and the slice
// handed around is recovered back to its array on return (capacity is
// the proof the slice still spans the original allocation).
type udpBuf [udpBufSize]byte

var udpBufPool = sync.Pool{New: func() any { return new(udpBuf) }}

func getUDPBuf() []byte {
	arr := udpBufPool.Get().(*udpBuf)
	return arr[:udpBufSize]
}

func putUDPBuf(buf []byte) {
	if cap(buf) != udpBufSize {
		return
	}
	arr := (*udpBuf)(unsafe.Pointer(unsafe.SliceData(buf[:udpBufSize])))
	udpBufPool.Put(arr)
}

// UDPServer serves one authoritative Server over a real UDP socket. It is
// used by cmd/dnsserver, the live-resolution example, and the loopback
// serving tier behind the e2e differential and UDP-transport benchmarks;
// the bulk study runs over the in-memory network instead.
type UDPServer struct {
	server *Server
	conn   *net.UDPConn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenUDP binds addr (e.g. "127.0.0.1:5353") and starts answering
// queries with s until Close is called.
func ListenUDP(addr string, s *Server) (*UDPServer, error) {
	return ListenUDPReaders(addr, s, 1)
}

// ListenUDPReaders is ListenUDP with an explicit read-loop count. One
// loop is plenty for the study's own serving needs; the transport
// benchmarks raise it so the serving side is not the bottleneck being
// measured when a batched client slams one socket.
func ListenUDPReaders(addr string, s *Server, readers int) (*UDPServer, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("authserver: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("authserver: listen %s: %w", addr, err)
	}
	_ = conn.SetReadBuffer(1 << 20)
	if readers < 1 {
		readers = 1
	}
	u := &UDPServer{server: s, conn: conn}
	u.wg.Add(readers)
	for i := 0; i < readers; i++ {
		go u.loop()
	}
	return u, nil
}

// Addr returns the bound address, useful when listening on port 0.
func (u *UDPServer) Addr() net.Addr { return u.conn.LocalAddr() }

// Close stops the server and waits for the read loops to exit.
func (u *UDPServer) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

// udpServeBatch is the serving loop's batch bound: queries in per
// recvmmsg round, responses out per sendmmsg round (udpx.PacketConn
// degrades both to one datagram per syscall where the batched calls
// are unavailable).
const udpServeBatch = 32

// loop is one read loop: whole batches of queries come up in one
// batched receive into loop-owned buffers reused across rounds, each
// query is answered in place (the handler decodes onto a pooled codec
// arena; responses land in loop-owned buffers reused across rounds),
// and the batch of responses goes out in one batched send. Steady
// state is allocation-free, gated by TestUDPServerLoopZeroAlloc; the
// AddrPort-based fallbacks keep even the portable path free of the
// per-datagram net.Addr allocation the net.PacketConn interface
// forces.
func (u *UDPServer) loop() {
	defer u.wg.Done()
	pc := udpx.NewPacketConn(u.conn, udpServeBatch, false)
	bufs := make([][]byte, udpServeBatch)
	for i := range bufs {
		bufs[i] = make([]byte, udpBufSize)
	}
	sizes := make([]int, udpServeBatch)
	addrs := make([]netip.AddrPort, udpServeBatch)
	resps := make([][]byte, udpServeBatch)
	outAddrs := make([]netip.AddrPort, udpServeBatch)
	for {
		n, err := pc.ReadBatch(bufs, sizes, addrs)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		m := 0
		for i := 0; i < n; i++ {
			if !addrs[i].IsValid() {
				continue
			}
			out, ok := u.server.HandleWireAppend(resps[m][:0], bufs[i][:sizes[i]])
			if ok {
				resps[m] = out
				outAddrs[m] = addrs[i]
				m++
			}
		}
		if m > 0 {
			// Best effort; a lost response is a normal UDP condition.
			pc.WriteBatch(resps[:m], outAddrs[:m])
		}
	}
}

// UDPTransport is a resolver transport that sends queries over real UDP
// sockets, one dialed socket per exchange. It is the slow, portable
// reference path: every query pays socket setup and teardown and a
// connect/send/recv syscall sequence, which is exactly why it makes a
// trustworthy oracle for udpx.BatchTransport — the e2e differential
// suite pins the batched path's scan digests against this one's
// (internal/measure), and `make bench-udp` records the throughput gap
// that buys. Real-network scans default to the batched transport
// (govscan -transport=batch); this path remains selectable with
// -transport=dial.
//
// Queries go to port 53 unless the server's IP has an entry in
// PortOverride (same IP, alternate port) or AddrOverride (full
// redirection); tests and examples run UDPServer instances on loopback
// high ports while the resolver keeps addressing servers by their
// nominal (possibly simulated-topology) IPs.
type UDPTransport struct {
	// PortOverride maps a server IP to the UDP port serving it.
	PortOverride map[netip.Addr]int
	// AddrOverride maps a server IP to the socket actually serving it,
	// taking precedence over PortOverride.
	AddrOverride map[netip.Addr]netip.AddrPort
}

// Exchange implements the resolver transport over UDP. The returned
// buffer comes from the shared datagram pool; the resolver returns it
// through ReleaseResponse once decoded.
func (t *UDPTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	target := ""
	if ap, ok := t.AddrOverride[server]; ok {
		target = ap.String()
	} else {
		port := 53
		if p, ok := t.PortOverride[server]; ok {
			port = p
		}
		target = net.JoinHostPort(server.String(), fmt.Sprint(port))
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", target)
	if err != nil {
		return nil, fmt.Errorf("authserver: dial %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()

	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("authserver: set deadline: %w", err)
		}
	}
	if _, err := conn.Write(query); err != nil {
		return nil, fmt.Errorf("authserver: send: %w", err)
	}
	buf := getUDPBuf()
	n, err := conn.Read(buf)
	if err != nil {
		putUDPBuf(buf)
		return nil, fmt.Errorf("authserver: receive: %w", err)
	}
	return buf[:n], nil
}

// ReleaseResponse returns a buffer handed out by Exchange to the
// datagram pool (resolver.ResponseReleaser). Foreign buffers are
// recognized by capacity and left to the GC.
func (t *UDPTransport) ReleaseResponse(buf []byte) { putUDPBuf(buf) }
