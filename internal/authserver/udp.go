package authserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
)

// UDPServer serves one authoritative Server over a real UDP socket. It is
// used by cmd/dnsserver and the live-resolution example; the bulk study
// runs over the in-memory network instead.
type UDPServer struct {
	server *Server
	conn   net.PacketConn

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// ListenUDP binds addr (e.g. "127.0.0.1:5353") and starts answering
// queries with s until Close is called.
func ListenUDP(addr string, s *Server) (*UDPServer, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("authserver: listen %s: %w", addr, err)
	}
	u := &UDPServer{server: s, conn: conn}
	u.wg.Add(1)
	go u.loop()
	return u, nil
}

// Addr returns the bound address, useful when listening on port 0.
func (u *UDPServer) Addr() net.Addr { return u.conn.LocalAddr() }

// Close stops the server and waits for the read loop to exit.
func (u *UDPServer) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	u.wg.Wait()
	return err
}

func (u *UDPServer) loop() {
	defer u.wg.Done()
	buf := make([]byte, 4096)
	var resp []byte
	for {
		n, peer, err := u.conn.ReadFrom(buf)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		// The handler decodes the query onto a codec arena before
		// returning, and the response lands in a loop-owned buffer reused
		// across packets — neither needs a per-packet allocation.
		out, ok := u.server.HandleWireAppend(resp[:0], buf[:n])
		if ok {
			resp = out
			// Best effort; a lost response is a normal UDP condition.
			_, _ = u.conn.WriteTo(resp, peer)
		}
	}
}

// UDPTransport is a resolver transport that sends queries over real UDP
// sockets. Queries go to port 53 unless the server's IP has an entry in
// PortOverride (same IP, alternate port) or AddrOverride (full
// redirection); tests and examples run UDPServer instances on loopback
// high ports while the resolver keeps addressing servers by their
// nominal (possibly simulated-topology) IPs.
type UDPTransport struct {
	// PortOverride maps a server IP to the UDP port serving it.
	PortOverride map[netip.Addr]int
	// AddrOverride maps a server IP to the socket actually serving it,
	// taking precedence over PortOverride.
	AddrOverride map[netip.Addr]netip.AddrPort
}

// Exchange implements the resolver transport over UDP.
func (t *UDPTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	target := ""
	if ap, ok := t.AddrOverride[server]; ok {
		target = ap.String()
	} else {
		port := 53
		if p, ok := t.PortOverride[server]; ok {
			port = p
		}
		target = net.JoinHostPort(server.String(), fmt.Sprint(port))
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "udp", target)
	if err != nil {
		return nil, fmt.Errorf("authserver: dial %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()

	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("authserver: set deadline: %w", err)
		}
	}
	if _, err := conn.Write(query); err != nil {
		return nil, fmt.Errorf("authserver: send: %w", err)
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, fmt.Errorf("authserver: receive: %w", err)
	}
	return buf[:n], nil
}
