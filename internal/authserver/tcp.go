package authserver

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"govdns/internal/dnswire"
)

// DefaultTCPIdleTimeout bounds how long a TCP connection may sit between
// frames (and how long one response write may take) before the server
// hangs up. Real deployments close idle DNS/TCP connections aggressively;
// the scanner's fallback exchanges are one-shot anyway.
const DefaultTCPIdleTimeout = 10 * time.Second

// TCPServer serves one authoritative Server over a real TCP listener
// with RFC 1035 §4.2.2 length-prefixed framing. It is the transport the
// scanner falls back to when a UDP answer arrives truncated, and the
// transport zone transfers require.
type TCPServer struct {
	server *Server
	ln     net.Listener
	idle   time.Duration

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// ListenTCP binds addr (e.g. "127.0.0.1:5353") and starts answering
// framed queries with s until Close is called.
func ListenTCP(addr string, s *Server) (*TCPServer, error) {
	return ListenTCPIdle(addr, s, DefaultTCPIdleTimeout)
}

// ListenTCPIdle is ListenTCP with an explicit per-connection idle
// timeout; 0 disables the deadline entirely (useful for debugging, never
// for production — a stalled peer then holds its goroutine forever).
func ListenTCPIdle(addr string, s *Server, idle time.Duration) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("authserver: listen tcp %s: %w", addr, err)
	}
	t := &TCPServer{
		server: s,
		ln:     ln,
		idle:   idle,
		conns:  make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound address, useful when listening on port 0.
func (t *TCPServer) Addr() net.Addr { return t.ln.Addr() }

// Close stops accepting, hangs up every live connection, and waits for
// all serving goroutines to exit.
func (t *TCPServer) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for c := range t.conns {
		_ = c.Close()
	}
	t.mu.Unlock()
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

func (t *TCPServer) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go func() {
			defer t.wg.Done()
			t.server.ServeTCPConn(conn, t.idle)
			t.mu.Lock()
			delete(t.conns, conn)
			t.mu.Unlock()
			_ = conn.Close()
		}()
	}
}

// ServeTCPConn answers length-prefixed DNS queries on conn until the
// peer hangs up, a frame read stalls past idle (0 disables deadlines),
// or the stream turns into something unanswerable. Frames are processed
// strictly in arrival order, so pipelined clients get responses in query
// order; reading the next frame never waits for the peer to drain the
// previous response beyond the kernel's send buffer.
//
// Framing discipline: the two-byte prefix is always trusted for
// resynchronization, so mid-stream garbage costs at most one FORMERR
// (when a 12-byte header was readable) or one silently dropped frame —
// never a desynchronized pipeline. Zero-length frames are skipped.
// AXFR queries divert to the streaming transfer path.
func (s *Server) ServeTCPConn(conn net.Conn, idle time.Duration) {
	var (
		hdr   [2]byte
		frame []byte
		resp  = make([]byte, 2, 4096)
	)
	for {
		if idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(idle))
		}
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(hdr[0])<<8 | int(hdr[1])
		if n == 0 {
			// A dead frame; the prefix kept us aligned, keep reading.
			continue
		}
		if cap(frame) < n {
			frame = make([]byte, n)
		}
		frame = frame[:n]
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		if q, ok := dnswire.PeekQuestion(frame); ok && q.Type == dnswire.TypeAXFR {
			if !s.serveAXFR(conn, frame, idle) {
				return
			}
			continue
		}
		out, ok := s.serveWire(resp[:2], frame, TransportTCP)
		if !ok {
			// Dropped (behaviour or sub-header garbage): no response
			// frame, but the stream stays aligned for the next query.
			continue
		}
		resp = out
		m := len(resp) - 2
		resp[0], resp[1] = byte(m>>8), byte(m)
		if idle > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(idle))
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

// TCPTransport is a resolver transport that sends queries over real TCP
// connections with length-prefixed framing — the fallback transport for
// truncated UDP answers. Queries go to port 53 unless the server's IP
// has an entry in PortOverride.
type TCPTransport struct {
	// PortOverride maps a server IP to the TCP port serving it.
	PortOverride map[netip.Addr]int
}

// Exchange implements the resolver transport over TCP: one connection,
// one framed query, one framed response.
func (t *TCPTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if len(query) > dnswire.MaxTCPPayload {
		return nil, fmt.Errorf("authserver: query exceeds TCP frame limit: %d bytes", len(query))
	}
	port := 53
	if p, ok := t.PortOverride[server]; ok {
		port = p
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", net.JoinHostPort(server.String(), fmt.Sprint(port)))
	if err != nil {
		return nil, fmt.Errorf("authserver: dial tcp %s: %w", server, err)
	}
	defer func() { _ = conn.Close() }()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("authserver: set deadline: %w", err)
		}
	}
	buf := make([]byte, 0, 2+len(query))
	buf = append(buf, byte(len(query)>>8), byte(len(query)))
	buf = append(buf, query...)
	if _, err := conn.Write(buf); err != nil {
		return nil, fmt.Errorf("authserver: send: %w", err)
	}
	return readFrame(conn, nil)
}

// readFrame reads one length-prefixed DNS message from r into buf
// (grown as needed) and returns the message bytes.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("authserver: read frame length: %w", err)
	}
	n := int(hdr[0])<<8 | int(hdr[1])
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("authserver: read frame body: %w", err)
	}
	return buf, nil
}
