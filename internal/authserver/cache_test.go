package authserver

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govdns/internal/dnswire"
	"govdns/internal/obs"
)

// fakeClock drives a ResponseCache's notion of time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func cacheTestServer(t *testing.T, clk *fakeClock) (*Server, *ResponseCache, *obs.Registry) {
	t.Helper()
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	c := NewResponseCache()
	if clk != nil {
		c.now = clk.Now
	}
	reg := obs.NewRegistry()
	c.AttachRegistry(reg)
	s.SetCache(c)
	return s, c, reg
}

func TestCacheTTLExpiry(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	s, c, reg := cacheTestServer(t, clk)

	wire, err := dnswire.Encode(query("www.gov.br.", dnswire.TypeA)) // 300s TTL record
	if err != nil {
		t.Fatal(err)
	}
	first := s.HandleWire(wire)
	if c.Len() != 1 {
		t.Fatalf("entries after first query = %d, want 1", c.Len())
	}
	_ = s.HandleWire(wire)
	if got := reg.Counter("authserver_cache_hits_total").Load(); got != 1 {
		t.Errorf("hits = %d, want 1", got)
	}

	clk.Advance(299 * time.Second)
	_ = s.HandleWire(wire)
	if got := reg.Counter("authserver_cache_hits_total").Load(); got != 2 {
		t.Errorf("hits within TTL = %d, want 2", got)
	}

	clk.Advance(2 * time.Second) // past the 300s record TTL
	again := s.HandleWire(wire)
	if got := reg.Counter("authserver_cache_evictions_total").Load(); got != 1 {
		t.Errorf("evictions after expiry = %d, want 1", got)
	}
	if got := reg.Counter("authserver_cache_hits_total").Load(); got != 2 {
		t.Errorf("hits after expiry = %d, want still 2", got)
	}
	// Expiry must be invisible in the bytes.
	if string(first) != string(again) {
		t.Error("re-rendered response differs from the expired entry's bytes")
	}
}

func TestCacheSweepExpired(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1700000000, 0)}
	s, c, _ := cacheTestServer(t, clk)

	queries := []dnswire.Type{dnswire.TypeA, dnswire.TypeNS, dnswire.TypeSOA}
	for _, qt := range queries {
		wire, err := dnswire.Encode(query("gov.br.", qt))
		if err != nil {
			t.Fatal(err)
		}
		_ = s.HandleWire(wire)
	}
	if c.Len() != len(queries) {
		t.Fatalf("entries = %d, want %d", c.Len(), len(queries))
	}
	if n := c.SweepExpired(); n != 0 {
		t.Errorf("premature sweep evicted %d", n)
	}
	clk.Advance(3601 * time.Second) // past the zone's 3600s TTLs
	if n := c.SweepExpired(); n != len(queries) {
		t.Errorf("sweep evicted %d, want %d", n, len(queries))
	}
	if c.Len() != 0 {
		t.Errorf("entries after sweep = %d, want 0", c.Len())
	}
}

func TestCacheUncacheableResponses(t *testing.T) {
	s, c, _ := cacheTestServer(t, nil)
	// REFUSED for an unhosted zone carries no records, so no TTL, so no
	// entry — but the response must still be served.
	wire, err := dnswire.Encode(query("example.com.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	resp := s.HandleWire(wire)
	m, err := dnswire.Decode(resp)
	if err != nil || m.Header.RCode != dnswire.RCodeRefused {
		t.Fatalf("unhosted query: %v / %v", m, err)
	}
	if c.Len() != 0 {
		t.Errorf("record-less REFUSED response was cached (%d entries)", c.Len())
	}
}

func TestCacheSingleflightCoalesces(t *testing.T) {
	s, c, reg := cacheTestServer(t, nil)

	// Gate the render so concurrent misses pile onto one flight: the
	// first renderer blocks until all workers have arrived.
	const workers = 8
	arrived := make(chan struct{}, workers)
	release := make(chan struct{})
	var renders atomic.Int32
	key := cacheKey{name: "www.gov.br.", qtype: dnswire.TypeA, class: TransportUDP, limit: 512}

	var wg sync.WaitGroup
	results := make([][]byte, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			arrived <- struct{}{}
			tmpl, ok := c.do(key, func() ([]byte, time.Duration) {
				renders.Add(1)
				<-release
				return []byte{0xCA, 0xFE, 0x01}, time.Minute
			})
			if !ok {
				t.Errorf("worker %d: do reported uncacheable", i)
			}
			results[i] = tmpl
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-arrived
	}
	// All workers are at or past the flight gate; let the winner render.
	close(release)
	wg.Wait()

	if got := renders.Load(); got != 1 {
		t.Errorf("renders = %d, want 1 (singleflight)", got)
	}
	for i, r := range results {
		if string(r) != "\xca\xfe\x01" {
			t.Errorf("worker %d got template % x", i, r)
		}
	}
	// Every non-winner either joined the flight (coalesced) or arrived
	// after the store and took the raced-hit path; both are accounted.
	co := reg.Counter("authserver_cache_coalesced_total").Load()
	hits := reg.Counter("authserver_cache_hits_total").Load()
	if co+hits != workers-1 {
		t.Errorf("coalesced+hits = %d+%d, want %d", co, hits, workers-1)
	}
	_ = s
}

func TestCacheKeyDiscriminates(t *testing.T) {
	s, c, _ := cacheTestServer(t, nil)
	s.SetEDNSBufSize(4096)

	mk := func(edns uint16) []byte {
		q := query("www.gov.br.", dnswire.TypeA)
		if edns > 0 {
			q.Additional = append(q.Additional, dnswire.OPTRecord(edns))
		}
		wire, err := dnswire.Encode(q)
		if err != nil {
			t.Fatal(err)
		}
		return wire
	}
	_ = s.HandleWire(mk(0))    // udp/512/no-opt
	_ = s.HandleWire(mk(1232)) // udp/1232/opt
	_ = s.HandleWire(mk(4096)) // udp/4096/opt
	_ = s.HandleWire(mk(8192)) // clamps to 4096/opt: shares the entry above
	if got := c.Len(); got != 3 {
		t.Errorf("distinct entries = %d, want 3 (8192 clamps onto 4096)", got)
	}
}
