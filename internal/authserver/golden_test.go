package authserver

// Golden-response coverage of the serving decision table in respond():
// every RCODE branch, the section shape each row promises, and the
// behaviour-injected failure modes — including the empty-NOERROR
// (NODATA) row that looks like success but carries only a SOA.

import (
	"testing"

	"govdns/internal/dnswire"
)

func TestDecisionTableGoldens(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))

	multiQ := query("www.gov.br.", dnswire.TypeA)
	multiQ.Questions = append(multiQ.Questions, multiQ.Questions[0])
	badOpcode := query("www.gov.br.", dnswire.TypeA)
	badOpcode.Header.Opcode = dnswire.OpcodeStatus
	badClass := query("www.gov.br.", dnswire.TypeA)
	badClass.Questions[0].Class = dnswire.ClassANY

	cases := []struct {
		desc    string
		query   *dnswire.Message
		rcode   dnswire.RCode
		aa      bool
		ans     int
		auth    int
		add     int
		authSOA bool // the authority section must be exactly one SOA
	}{
		{desc: "multi-question NOTIMP", query: multiQ, rcode: dnswire.RCodeNotImp},
		{desc: "non-query opcode NOTIMP", query: badOpcode, rcode: dnswire.RCodeNotImp},
		{desc: "non-IN class NOTIMP", query: badClass, rcode: dnswire.RCodeNotImp},
		{desc: "AXFR on this path REFUSED", query: query("gov.br.", dnswire.TypeAXFR),
			rcode: dnswire.RCodeRefused},
		{desc: "unhosted zone REFUSED", query: query("example.com.", dnswire.TypeA),
			rcode: dnswire.RCodeRefused},
		{desc: "referral NOERROR no-AA", query: query("www.city.gov.br.", dnswire.TypeA),
			rcode: dnswire.RCodeNoError, auth: 1, add: 1},
		{desc: "answer NOERROR AA", query: query("www.gov.br.", dnswire.TypeA),
			rcode: dnswire.RCodeNoError, aa: true, ans: 1},
		{desc: "NS answer with glue NOERROR AA", query: query("gov.br.", dnswire.TypeNS),
			rcode: dnswire.RCodeNoError, aa: true, ans: 1, add: 1},
		{desc: "empty-NOERROR (NODATA) AA+SOA", query: query("www.gov.br.", dnswire.TypeMX),
			rcode: dnswire.RCodeNoError, aa: true, auth: 1, authSOA: true},
		{desc: "NXDOMAIN AA+SOA", query: query("missing.gov.br.", dnswire.TypeA),
			rcode: dnswire.RCodeNXDomain, aa: true, auth: 1, authSOA: true},
	}
	for _, c := range cases {
		resp := s.Handle(c.query)
		if resp == nil {
			t.Fatalf("%s: dropped", c.desc)
		}
		if !resp.Header.Response || resp.Header.ID != c.query.Header.ID {
			t.Errorf("%s: bad response header %+v", c.desc, resp.Header)
		}
		if resp.Header.RCode != c.rcode {
			t.Errorf("%s: RCode = %s, want %s", c.desc, resp.Header.RCode, c.rcode)
		}
		if resp.Header.Authoritative != c.aa {
			t.Errorf("%s: AA = %v, want %v", c.desc, resp.Header.Authoritative, c.aa)
		}
		if len(resp.Answers) != c.ans || len(resp.Authority) != c.auth || len(resp.Additional) != c.add {
			t.Errorf("%s: sections = %d/%d/%d, want %d/%d/%d", c.desc,
				len(resp.Answers), len(resp.Authority), len(resp.Additional),
				c.ans, c.auth, c.add)
		}
		if c.authSOA && (len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA) {
			t.Errorf("%s: authority is not a single SOA: %v", c.desc, resp.Authority)
		}
	}
}

func TestBehaviorGoldens(t *testing.T) {
	cases := []struct {
		behavior Behavior
		rcode    dnswire.RCode
		dropped  bool
	}{
		{BehaviorServFail, dnswire.RCodeServFail, false},
		{BehaviorRefused, dnswire.RCodeRefused, false},
		{BehaviorUnresponsive, 0, true},
	}
	for _, c := range cases {
		s := New("ns1.gov.br.")
		s.AddZone(testZone(t))
		s.SetBehavior(c.behavior)
		resp := s.Handle(query("www.gov.br.", dnswire.TypeA))
		if c.dropped {
			if resp != nil {
				t.Errorf("%s: got response, want drop", c.behavior)
			}
			continue
		}
		if resp == nil {
			t.Fatalf("%s: dropped, want %s", c.behavior, c.rcode)
		}
		if resp.Header.RCode != c.rcode {
			t.Errorf("%s: RCode = %s, want %s", c.behavior, resp.Header.RCode, c.rcode)
		}
		if len(resp.Answers)+len(resp.Authority)+len(resp.Additional) != 0 {
			t.Errorf("%s: non-empty sections on failure response", c.behavior)
		}
	}
}

func TestWireGoldensFormErrAndDrop(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))

	// Sub-header garbage is dropped on both transport classes.
	if out, ok := s.serveWire(nil, []byte{0xAB, 0xCD, 3}, TransportUDP); ok {
		t.Errorf("sub-header garbage answered over UDP: % x", out)
	}
	if out, ok := s.serveWire(nil, []byte{0xAB, 0xCD, 3}, TransportTCP); ok {
		t.Errorf("sub-header garbage answered over TCP: % x", out)
	}

	// Garbage with a readable header gets FORMERR echoing the ID.
	junk := make([]byte, 20)
	junk[0], junk[1] = 0xBE, 0xEF
	junk[5] = 7 // claims 7 questions, none present
	out, ok := s.serveWire(nil, junk, TransportUDP)
	if !ok {
		t.Fatal("header-bearing garbage dropped, want FORMERR")
	}
	m, err := dnswire.Decode(out)
	if err != nil {
		t.Fatalf("FORMERR response does not decode: %v", err)
	}
	if m.Header.RCode != dnswire.RCodeFormErr || m.Header.ID != 0xBEEF {
		t.Errorf("FORMERR golden: RCode=%s ID=%#x, want FORMERR/0xbeef",
			m.Header.RCode, m.Header.ID)
	}
	if len(m.Questions)+len(m.Answers)+len(m.Authority)+len(m.Additional) != 0 {
		t.Error("FORMERR response carries sections")
	}
}
