package authserver

import (
	"context"
	"fmt"
	"net"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/zone"
)

// axfrBatch is how many records ride one AXFR response message. Batching
// keeps messages far below the 64 KiB frame ceiling for the record
// shapes the study's zones hold, while amortizing per-message framing.
const axfrBatch = 64

// serveAXFR streams a full zone transfer for the AXFR query in frame:
// an initial message carrying the question and the zone's SOA, batches
// of the remaining records in the zone's canonical order, and a closing
// SOA that marks the transfer complete (RFC 5936 shape, as coredns's
// transfer middleware implements it). Transfers require an exactly
// hosted origin on a healthy server; anything else gets the ordinary
// single-response treatment (REFUSED, behaviour RCODE, or a drop).
//
// The return value reports whether the connection is still usable; a
// failed write means the peer is gone and the serving loop should exit.
func (s *Server) serveAXFR(conn net.Conn, frame []byte, idle time.Duration) bool {
	s.mu.RLock()
	behavior := s.behavior
	pool := s.pool
	s.mu.RUnlock()
	if pool == nil {
		pool = wirePool
	}
	a := pool.Get()
	defer a.Finish()

	query, err := a.Decode(frame)
	if err != nil || len(query.Questions) != 1 {
		return s.writeSingle(conn, frame, idle)
	}
	q := query.Question()
	var z *zone.Zone
	if behavior == BehaviorHealthy && q.Class == dnswire.ClassIN {
		z, _ = s.ZoneByOrigin(q.Name)
	}
	if z == nil {
		return s.writeSingle(conn, frame, idle)
	}
	soa, err := z.SOA()
	if err != nil {
		// A zone without a SOA cannot delimit a transfer; refuse it.
		return s.writeSingle(conn, frame, idle)
	}

	// One output buffer per transfer; each message encodes on the arena
	// (Encode resets only the output region, so the decoded query keeps
	// its storage) and is framed+written before the next encode reuses it.
	var out []byte
	flush := func(m *dnswire.Message) bool {
		enc, err := a.Encode(m)
		if err != nil || len(enc) > dnswire.MaxTCPPayload {
			return false
		}
		out = append(out[:0], byte(len(enc)>>8), byte(len(enc)))
		out = append(out, enc...)
		if idle > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(idle))
		}
		_, err = conn.Write(out)
		return err == nil
	}

	msg := dnswire.Message{
		Header: dnswire.Header{
			ID:            query.Header.ID,
			Response:      true,
			Opcode:        query.Header.Opcode,
			Authoritative: true,
		},
	}
	// Opening message: question echoed, SOA first.
	msg.Questions = query.Questions
	msg.Answers = []dnswire.RR{soa}
	if !flush(&msg) {
		return false
	}
	msg.Questions = nil

	// Middle messages: every record but the SOA, in Records()' canonical
	// (name, type, rdata) order — the order the conformance suite pins.
	records := z.Records()
	batch := make([]dnswire.RR, 0, axfrBatch)
	for _, rr := range records {
		if rr.Type() == dnswire.TypeSOA && rr.Name == z.Origin() {
			continue
		}
		batch = append(batch, rr)
		if len(batch) == axfrBatch {
			msg.Answers = batch
			if !flush(&msg) {
				return false
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		msg.Answers = batch
		if !flush(&msg) {
			return false
		}
	}

	// Closing SOA delimits the transfer.
	msg.Answers = []dnswire.RR{soa}
	return flush(&msg)
}

// writeSingle answers frame with the ordinary single-response pipeline
// (which REFUSES AXFR qtypes) and writes it framed. It reports whether
// the connection is still usable.
func (s *Server) writeSingle(conn net.Conn, frame []byte, idle time.Duration) bool {
	out, ok := s.serveWire(make([]byte, 2, 512), frame, TransportTCP)
	if !ok {
		return true // dropped: no response, stream still aligned
	}
	n := len(out) - 2
	out[0], out[1] = byte(n>>8), byte(n)
	if idle > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(idle))
	}
	_, err := conn.Write(out)
	return err == nil
}

// FetchZone performs an AXFR of origin from the primary at addr
// ("host:port") and returns the transferred zone. The transfer is
// complete when the SOA record repeats; the fetched zone carries the
// leading SOA and every record in between.
func FetchZone(ctx context.Context, addr string, origin dnsname.Name) (*zone.Zone, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("authserver: axfr dial %s: %w", addr, err)
	}
	defer func() { _ = conn.Close() }()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("authserver: axfr set deadline: %w", err)
		}
	}

	query := dnswire.NewQuery(1, origin, dnswire.TypeAXFR)
	wire, err := dnswire.Encode(query)
	if err != nil {
		return nil, fmt.Errorf("authserver: axfr encode: %w", err)
	}
	framed := make([]byte, 0, 2+len(wire))
	framed = append(framed, byte(len(wire)>>8), byte(len(wire)))
	framed = append(framed, wire...)
	if _, err := conn.Write(framed); err != nil {
		return nil, fmt.Errorf("authserver: axfr send: %w", err)
	}

	z := zone.New(origin)
	soaSeen := 0
	var buf []byte
	for soaSeen < 2 {
		buf, err = readFrame(conn, buf)
		if err != nil {
			return nil, fmt.Errorf("authserver: axfr %s: %w", origin, err)
		}
		m, err := dnswire.Decode(buf)
		if err != nil {
			return nil, fmt.Errorf("authserver: axfr %s: bad message: %w", origin, err)
		}
		if m.Header.RCode != dnswire.RCodeNoError {
			return nil, fmt.Errorf("authserver: axfr %s: %s", origin, m.Header.RCode)
		}
		if len(m.Answers) == 0 {
			return nil, fmt.Errorf("authserver: axfr %s: empty transfer message", origin)
		}
		for _, rr := range m.Answers {
			if rr.Type() == dnswire.TypeSOA && rr.Name == origin {
				soaSeen++
				if soaSeen == 2 {
					break // trailing SOA: transfer complete
				}
			}
			if err := z.Add(rr); err != nil {
				return nil, fmt.Errorf("authserver: axfr %s: %w", origin, err)
			}
		}
	}
	return z, nil
}

// SyncZone bootstraps secondary as a replica of origin from the primary
// at addr: one AXFR, then an atomic zone install. Re-syncing later
// replaces the copy, so replication lag is however long the caller waits
// between syncs — a measurable quantity, not an assumption.
func SyncZone(ctx context.Context, addr string, origin dnsname.Name, secondary *Server) error {
	z, err := FetchZone(ctx, addr, origin)
	if err != nil {
		return err
	}
	secondary.AddZone(z)
	return nil
}
