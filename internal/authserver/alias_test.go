package authserver

// Serving-side extension of resolver.TestWirePathAliasSafety: the UDP
// loop reuses one response buffer across packets and the codec runs on
// recycled arenas, so any state the serving tier retains past an
// exchange — cached response templates above all — must be owned
// storage. Concurrent pooled serving with bit-for-bit comparison against
// pre-computed goldens catches both data races (under -race) and alias
// corruption (under any build).

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

func TestServeWireAliasSafety(t *testing.T) {
	pool := dnswire.NewPool()
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	s.SetWirePool(pool)
	s.SetCache(NewResponseCache())

	type probe struct {
		wire     []byte
		expected []byte
	}
	var probes []probe
	for i, q := range []struct {
		name  dnsname.Name
		qtype dnswire.Type
	}{
		{"www.gov.br.", dnswire.TypeA},
		{"gov.br.", dnswire.TypeNS},
		{"gov.br.", dnswire.TypeSOA},
		{"www.gov.br.", dnswire.TypeMX},
		{"missing.gov.br.", dnswire.TypeA},
		{"www.city.gov.br.", dnswire.TypeA},
	} {
		wire := confWire(t, q.name, q.qtype, uint16(100+i), i%2 == 0, uint16(i%2)*1232)
		resp := s.HandleWire(wire)
		if resp == nil {
			t.Fatalf("probe %d dropped", i)
		}
		probes = append(probes, probe{wire: wire, expected: resp})
	}

	// Phase 1: concurrent serving on goroutine-local reused buffers.
	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, 0, 1024)
			for r := 0; r < rounds; r++ {
				for i, p := range probes {
					out, ok := s.HandleWireAppend(dst[:0], p.wire)
					if !ok {
						errCh <- fmt.Errorf("round %d probe %d dropped", r, i)
						return
					}
					if !bytes.Equal(out, p.expected) {
						errCh <- fmt.Errorf("round %d probe %d: response bytes diverged\ngot:  % x\nwant: % x",
							r, i, out, p.expected)
						return
					}
					dst = out
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	st := pool.Stats()
	if st.Recycles == 0 {
		t.Fatalf("pool never recycled an arena: %+v", st)
	}
	if st.Checkouts != st.Recycles+st.Discards {
		t.Fatalf("arena leak: %d checkouts vs %d recycles + %d discards",
			st.Checkouts, st.Recycles, st.Discards)
	}

	// Phase 2: rewrite every recycled arena's scratch with junk, then
	// confirm the cached templates still serve the original bytes — a
	// template aliasing arena storage would now carry 'z's.
	junk := dnswire.NewQuery(1, dnsname.MustParse(strings.Repeat("z", 60)+".example"), dnswire.TypeA)
	junkWire, err := dnswire.Encode(junk)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		arenas := make([]*dnswire.Arena, 16)
		for i := range arenas {
			arenas[i] = pool.Get()
			if _, err := arenas[i].Decode(junkWire); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range arenas {
			a.Finish()
		}
	}
	for i, p := range probes {
		out := s.HandleWire(p.wire)
		if !bytes.Equal(out, p.expected) {
			t.Errorf("probe %d changed after arena recycle:\ngot:  % x\nwant: % x",
				i, out, p.expected)
		}
	}
}
