package authserver

import (
	"net/netip"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/zone"
)

func testZone(t *testing.T) *zone.Zone {
	t.Helper()
	z := zone.New("gov.br.")
	records := []dnswire.RR{
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOAData{
			MName: "ns1.gov.br.", RName: "hostmaster.gov.br.", Serial: 1}},
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns1.gov.br."}},
		{Name: "ns1.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: netip.MustParseAddr("198.51.100.1")}},
		{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns1.city.gov.br."}},
		{Name: "ns1.city.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.AData{Addr: netip.MustParseAddr("203.0.113.1")}},
		{Name: "www.gov.br.", Class: dnswire.ClassIN, TTL: 300, Data: dnswire.AData{Addr: netip.MustParseAddr("192.0.2.80")}},
	}
	for _, rr := range records {
		z.MustAdd(rr)
	}
	return z
}

func query(name dnsname.Name, qtype dnswire.Type) *dnswire.Message {
	return dnswire.NewQuery(42, name, qtype)
}

func TestHandleAuthoritativeAnswer(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	resp := s.Handle(query("www.gov.br.", dnswire.TypeA))
	if resp == nil {
		t.Fatal("nil response")
	}
	if !resp.Header.Authoritative {
		t.Error("AA bit clear on authoritative answer")
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d, want 1", len(resp.Answers))
	}
}

func TestHandleReferral(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	resp := s.Handle(query("city.gov.br.", dnswire.TypeNS))
	if resp.Header.Authoritative {
		t.Error("AA bit set on referral")
	}
	if !resp.IsReferral() {
		t.Fatalf("expected referral, got %s", resp)
	}
	if len(resp.Additional) != 1 {
		t.Errorf("glue records = %d, want 1", len(resp.Additional))
	}
}

func TestHandleDeepestZoneWins(t *testing.T) {
	// A server hosting both parent and child answers child queries
	// authoritatively from the child zone (no referral).
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	child := zone.New("city.gov.br.")
	child.MustAdd(dnswire.RR{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.SOAData{MName: "ns1.city.gov.br.", RName: "h.city.gov.br."}})
	child.MustAdd(dnswire.RR{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600,
		Data: dnswire.NSData{Host: "ns1.city.gov.br."}})
	s.AddZone(child)

	resp := s.Handle(query("city.gov.br.", dnswire.TypeNS))
	if !resp.Header.Authoritative {
		t.Error("expected authoritative answer from child zone")
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d, want 1", len(resp.Answers))
	}
}

func TestHandleRefusedForUnknownZone(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	resp := s.Handle(query("example.com.", dnswire.TypeA))
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
}

func TestHandleNXDomain(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	resp := s.Handle(query("missing.gov.br.", dnswire.TypeA))
	if resp.Header.RCode != dnswire.RCodeNXDomain {
		t.Errorf("RCode = %v, want NXDOMAIN", resp.Header.RCode)
	}
	if len(resp.Authority) != 1 || resp.Authority[0].Type() != dnswire.TypeSOA {
		t.Error("NXDOMAIN lacks SOA in authority")
	}
}

func TestBehaviors(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	q := query("www.gov.br.", dnswire.TypeA)

	s.SetBehavior(BehaviorUnresponsive)
	if resp := s.Handle(q); resp != nil {
		t.Error("unresponsive server answered")
	}
	s.SetBehavior(BehaviorServFail)
	if resp := s.Handle(q); resp.Header.RCode != dnswire.RCodeServFail {
		t.Errorf("RCode = %v, want SERVFAIL", resp.Header.RCode)
	}
	s.SetBehavior(BehaviorRefused)
	if resp := s.Handle(q); resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("RCode = %v, want REFUSED", resp.Header.RCode)
	}
	if got := s.Behavior(); got != BehaviorRefused {
		t.Errorf("Behavior() = %v", got)
	}
}

func TestParkingBehavior(t *testing.T) {
	s := New("park.example.com.")
	s.SetBehavior(BehaviorParking)
	s.SetParkingTarget(netip.MustParseAddr("203.0.113.99"))

	resp := s.Handle(query("hijacked.gov.xx.", dnswire.TypeA))
	if !resp.Header.Authoritative || len(resp.Answers) != 1 {
		t.Fatalf("parking A response: %s", resp)
	}
	if a := resp.Answers[0].Data.(dnswire.AData); a.Addr != netip.MustParseAddr("203.0.113.99") {
		t.Errorf("parking target = %v", a.Addr)
	}
	resp = s.Handle(query("hijacked.gov.xx.", dnswire.TypeNS))
	if len(resp.Answers) != 1 || resp.Answers[0].Data.(dnswire.NSData).Host != "park.example.com." {
		t.Errorf("parking NS response: %s", resp)
	}
}

func TestDropZoneCausesRefused(t *testing.T) {
	s := New("ns1.gov.br.")
	z := testZone(t)
	s.AddZone(z)
	s.DropZone(z.Origin())
	resp := s.Handle(query("www.gov.br.", dnswire.TypeA))
	if resp.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("RCode after DropZone = %v, want REFUSED", resp.Header.RCode)
	}
	if len(s.Zones()) != 0 {
		t.Errorf("Zones() = %v after DropZone", s.Zones())
	}
}

func TestHandleWireRoundTrip(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	wire, err := dnswire.Encode(query("www.gov.br.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	respWire := s.HandleWire(wire)
	if respWire == nil {
		t.Fatal("HandleWire returned nil")
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if resp.Header.ID != 42 || len(resp.Answers) != 1 {
		t.Errorf("response: %s", resp)
	}
}

func TestHandleWireGarbage(t *testing.T) {
	s := New("ns1.gov.br.")
	// Shorter than a header: dropped.
	if resp := s.HandleWire([]byte{1, 2, 3}); resp != nil {
		t.Error("tiny garbage got a response")
	}
	// Full header but broken body: FORMERR with the same ID.
	junk := make([]byte, 14)
	junk[0], junk[1] = 0xAB, 0xCD
	junk[5] = 1     // one question
	junk[12] = 0xC0 // bad pointer
	junk[13] = 0xFF
	respWire := s.HandleWire(junk)
	if respWire == nil {
		t.Fatal("header-complete garbage should get FORMERR")
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.RCode != dnswire.RCodeFormErr || resp.Header.ID != 0xABCD {
		t.Errorf("got %s", resp)
	}
}

func TestHandleRejectsWeirdQueries(t *testing.T) {
	s := New("ns1.gov.br.")
	s.AddZone(testZone(t))
	chaos := query("www.gov.br.", dnswire.TypeA)
	chaos.Questions[0].Class = dnswire.Class(3)
	if resp := s.Handle(chaos); resp.Header.RCode != dnswire.RCodeNotImp {
		t.Errorf("CH class: RCode = %v, want NOTIMP", resp.Header.RCode)
	}
	twoQ := query("www.gov.br.", dnswire.TypeA)
	twoQ.Questions = append(twoQ.Questions, twoQ.Questions[0])
	if resp := s.Handle(twoQ); resp.Header.RCode != dnswire.RCodeNotImp {
		t.Errorf("two questions: RCode = %v, want NOTIMP", resp.Header.RCode)
	}
}
