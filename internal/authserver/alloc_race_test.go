//go:build race

package authserver

// raceEnabled gates allocation-count assertions, which the race
// detector's instrumentation would invalidate.
const raceEnabled = true
