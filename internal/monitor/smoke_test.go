package monitor

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	"govdns/internal/measure"
	"govdns/internal/miniworld"
	"govdns/internal/trace"
)

// TestMonitorSmoke is the end-to-end drill `make monitor-smoke` runs:
// two epochs over the hand-crafted miniworld with one injected NS
// hijack between them. It must produce exactly one alert — critical,
// for the hijacked domain — and that domain must carry a complete
// retained span tree in the epoch's trace archive.
func TestMonitorSmoke(t *testing.T) {
	dir := t.TempDir()
	w := miniworld.Build()
	domains := miniworld.Domains()
	m, err := Open(Config{StateDir: dir, ScanKey: "smoke", CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	rep0, err := m.RunEpoch(ctx, epochScanner(w, 4, nil), measure.SliceSource(domains))
	if err != nil {
		t.Fatalf("baseline epoch: %v", err)
	}
	if len(rep0.Alerts) != 0 {
		t.Fatalf("baseline epoch alerted: %+v", rep0.Alerts)
	}

	w.HijackCity()

	rep1, err := m.RunEpoch(ctx, epochScanner(w, 4, nil), measure.SliceSource(domains))
	if err != nil {
		t.Fatalf("incident epoch: %v", err)
	}
	if len(rep1.Alerts) != 1 {
		t.Fatalf("incident epoch produced %d alerts, want exactly 1: %+v", len(rep1.Alerts), rep1.Alerts)
	}
	a := rep1.Alerts[0]
	if a.Domain != "city.gov.br." || a.Severity != SevCritical {
		t.Errorf("alert = %s [%s], want city.gov.br. [critical]", a.Domain, a.Severity)
	}
	if !hasKind(a, "hijack-pattern") || !hasKind(a, "ns-churn") {
		t.Errorf("alert kinds %v, want hijack-pattern and ns-churn", findingKinds(a))
	}
	// The hijack replaces the delegation but the evil operator answers
	// correctly, so classification never flips — exactly the incident a
	// class-only monitor misses.
	if a.PrevClass != "healthy" || a.Class != "healthy" {
		t.Errorf("classes %s -> %s, want healthy -> healthy", a.PrevClass, a.Class)
	}

	// The alerted domain must carry a complete retained span tree.
	f, err := os.Open(m.TracesPath(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	traces, err := trace.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	var city *trace.DomainTrace
	for _, dt := range traces {
		if dt.Domain == "city.gov.br." {
			city = dt
		}
	}
	if city == nil {
		t.Fatalf("no retained trace for alerted domain among %d traces", len(traces))
	}
	pinned := false
	for _, r := range city.RetainedFor {
		if r == trace.RetainPinned {
			pinned = true
		}
	}
	if !pinned {
		t.Errorf("city trace retained for %v, want %q bucket", city.RetainedFor, trace.RetainPinned)
	}
	assertCompleteTree(t, city)

	// The triage renderer surfaces the hijack inline.
	var buf bytes.Buffer
	WriteAlert(&buf, a)
	if !strings.Contains(buf.String(), "hijack-pattern") {
		t.Errorf("rendered alert lacks hijack-pattern:\n%s", buf.String())
	}
	if err := trace.RenderTree(&buf, city); err != nil {
		t.Fatal(err)
	}
}

// assertCompleteTree mirrors the measure trace suite's completeness
// assertions: nothing dropped, every span ended, a single domain root,
// and parents always preceding children.
func assertCompleteTree(t *testing.T, dt *trace.DomainTrace) {
	t.Helper()
	if dt.DroppedSpans != 0 {
		t.Errorf("trace dropped %d spans", dt.DroppedSpans)
	}
	if len(dt.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	for i, sp := range dt.Spans {
		if !sp.Ended() {
			t.Errorf("span %d (%s) never ended", i, sp.Name)
		}
		if i == 0 {
			if sp.Kind != trace.KindDomain || sp.Parent != trace.NoSpan {
				t.Errorf("span 0 = kind %s parent %d, want domain root", sp.Kind, sp.Parent)
			}
			continue
		}
		if sp.Parent < 0 || int(sp.Parent) >= i {
			t.Errorf("span %d has parent %d, not an earlier span", i, sp.Parent)
		}
	}
}
