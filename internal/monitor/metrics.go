package monitor

import (
	"time"

	"govdns/internal/obs"
)

// Metrics holds the daemon's own instruments, layered on top of the
// per-scan ScanMetrics the scanner already records. Every handle is
// obs-nil-safe, so an unmonitored Monitor (nil Registry) pays only nil
// checks.
//
//	monitor_epoch_duration          whole-epoch wall clock (histogram)
//	monitor_epochs_completed_total  epochs that ran to completion
//	monitor_epoch_failures_total    epochs that errored or were cancelled
//	monitor_consecutive_failures    current failure streak (liveness input)
//	monitor_alerts_total{severity}  alerts emitted, by severity
//	monitor_flips_total{class}      classification flips, by new class
//	monitor_alert_backlog           alerts buffered awaiting the next
//	                                checkpoint flush
//	monitor_last_epoch_unix_ns      completion time of the last epoch
type Metrics struct {
	epochDuration *obs.Histogram
	epochs        *obs.Counter
	failures      *obs.Counter
	consecutive   *obs.Gauge
	alerts        *obs.CounterVec
	flips         *obs.CounterVec
	backlog       *obs.Gauge
	lastEpochNS   *obs.Gauge
}

// NewMetrics binds the monitor instruments on r (nil r yields no-op
// instruments, per obs's contract).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		epochDuration: r.Histogram("monitor_epoch_duration"),
		epochs:        r.Counter("monitor_epochs_completed_total"),
		failures:      r.Counter("monitor_epoch_failures_total"),
		consecutive:   r.Gauge("monitor_consecutive_failures"),
		alerts:        r.CounterVecKeyed("monitor_alerts_total", "severity"),
		flips:         r.CounterVecKeyed("monitor_flips_total", "class"),
		backlog:       r.Gauge("monitor_alert_backlog"),
		lastEpochNS:   r.Gauge("monitor_last_epoch_unix_ns"),
	}
}

func (m *Metrics) recordAlert(a *Alert) {
	if m == nil {
		return
	}
	m.alerts.With(a.Severity.String()).Inc()
	for _, f := range a.Findings {
		if f.Kind == "class-flip" {
			m.flips.With(a.Class).Inc()
		}
	}
}

func (m *Metrics) setBacklog(n int) {
	if m == nil {
		return
	}
	m.backlog.Set(int64(n))
}

func (m *Metrics) recordEpoch(start time.Time, consecutiveFailures int) {
	if m == nil {
		return
	}
	m.epochDuration.ObserveSince(start)
	m.epochs.Inc()
	m.consecutive.Set(int64(consecutiveFailures))
	m.lastEpochNS.Set(time.Now().UnixNano())
}

func (m *Metrics) recordFailure(consecutiveFailures int) {
	if m == nil {
		return
	}
	m.failures.Inc()
	m.consecutive.Set(int64(consecutiveFailures))
}
