package monitor

import (
	"net/netip"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/measure"
)

// healthyResult fabricates a healthy DomainResult delegated to the
// given NS hosts, each answering authoritatively at the given address.
func healthyResult(domain string, hosts map[string]string) *measure.DomainResult {
	r := &measure.DomainResult{
		Domain:          dnsname.MustParse(domain),
		ParentZone:      "gov.br.",
		ParentResponded: true,
		Addrs:           make(map[dnsname.Name][]netip.Addr),
	}
	var nsSet []dnsname.Name
	for h := range hosts {
		nsSet = append(nsSet, dnsname.MustParse(h))
	}
	for h, addr := range hosts {
		host := dnsname.MustParse(h)
		a := netip.MustParseAddr(addr)
		r.ParentNS = append(r.ParentNS, host)
		r.Addrs[host] = []netip.Addr{a}
		r.Servers = append(r.Servers, measure.ServerResponse{
			Host: host, Addr: a, OK: true, Authoritative: true,
			RCode: dnswire.RCodeNoError, NS: nsSet,
		})
	}
	return r
}

// lameResult is healthyResult with every server silent: fully lame.
func lameResult(domain string, hosts map[string]string) *measure.DomainResult {
	r := healthyResult(domain, hosts)
	for i := range r.Servers {
		r.Servers[i].OK = false
		r.Servers[i].Err = "timeout"
	}
	return r
}

func baselineOf(results ...*measure.DomainResult) map[dnsname.Name]Summary {
	m := make(map[dnsname.Name]Summary)
	for _, r := range results {
		m[r.Domain] = Summarize(r)
	}
	return m
}

func findingKinds(a *Alert) []string {
	if a == nil {
		return nil
	}
	kinds := make([]string, len(a.Findings))
	for i, f := range a.Findings {
		kinds[i] = f.Kind
	}
	return kinds
}

func hasKind(a *Alert, kind string) bool {
	for _, k := range findingKinds(a) {
		if k == kind {
			return true
		}
	}
	return false
}

func TestDifferNoBaselineEmitsNothing(t *testing.T) {
	d := NewDiffer(nil)
	if a := d.Diff(lameResult("x.gov.br", map[string]string{"ns1.x.gov.br": "10.0.0.1"})); a != nil {
		t.Errorf("first epoch produced alert %+v, want none", a)
	}
	var nilD *Differ
	if a := nilD.Diff(healthyResult("x.gov.br", map[string]string{"ns1.x.gov.br": "10.0.0.1"})); a != nil {
		t.Error("nil differ produced an alert")
	}
}

func TestDifferUnchangedDomainIsSilent(t *testing.T) {
	d := NewDiffer(nil)
	r := healthyResult("city.gov.br", map[string]string{"ns1.city.gov.br": "10.0.0.1"})
	d.SetBaseline(baselineOf(r))
	if a := d.Diff(healthyResult("city.gov.br", map[string]string{"ns1.city.gov.br": "10.0.0.1"})); a != nil {
		t.Errorf("unchanged domain alerted: kinds %v", findingKinds(a))
	}
}

// TestDifferClassFlipSeverity pins the severity taxonomy: downgrades to
// total service loss are critical, partial downgrades warning, and
// recoveries info.
func TestDifferClassFlipSeverity(t *testing.T) {
	hosts := map[string]string{"ns1.city.gov.br": "10.0.0.1"}
	d := NewDiffer(nil)
	d.SetBaseline(baselineOf(healthyResult("city.gov.br", hosts)))

	down := d.Diff(lameResult("city.gov.br", hosts))
	if down == nil || down.Severity != SevCritical || !hasKind(down, "class-flip") {
		t.Fatalf("healthy->fully-lame alert = %+v, want critical class-flip", down)
	}
	if down.PrevClass != "healthy" || down.Class != "fully-lame" {
		t.Errorf("flip classes %s -> %s", down.PrevClass, down.Class)
	}

	// Partial degradation: two NS, one dies -> partially-lame, warning.
	two := map[string]string{"ns1.city.gov.br": "10.0.0.1", "ns2.city.gov.br": "10.0.0.2"}
	d.SetBaseline(baselineOf(healthyResult("city.gov.br", two)))
	partial := healthyResult("city.gov.br", two)
	partial.Servers[0].OK = false
	partial.Servers[0].Err = "timeout"
	mid := d.Diff(partial)
	if mid == nil || mid.Severity != SevWarning {
		t.Fatalf("healthy->partially-lame alert = %+v, want warning", mid)
	}

	// Recovery: fully-lame baseline, healthy now -> info.
	d.SetBaseline(baselineOf(lameResult("city.gov.br", hosts)))
	up := d.Diff(healthyResult("city.gov.br", hosts))
	if up == nil || up.Severity != SevInfo || !hasKind(up, "class-flip") {
		t.Fatalf("recovery alert = %+v, want info class-flip", up)
	}
}

// TestDifferHijackHeuristic: only the conjunction fires — out of
// bailiwick AND uncataloged AND low baseline spread. Each counterexample
// drops one conjunct.
func TestDifferHijackHeuristic(t *testing.T) {
	base := healthyResult("city.gov.br", map[string]string{
		"ns1.city.gov.br": "10.0.0.1", "ns2.city.gov.br": "10.0.0.2",
	})

	diffWith := func(t *testing.T, extraBaseline []*measure.DomainResult, newHost string) *Alert {
		t.Helper()
		d := NewDiffer(nil)
		d.SetBaseline(baselineOf(append(extraBaseline, base)...))
		return d.Diff(healthyResult("city.gov.br", map[string]string{newHost: "66.6.0.1"}))
	}

	a := diffWith(t, nil, "ns1.evil-ops.com")
	if a == nil || !hasKind(a, "hijack-pattern") || a.Severity != SevCritical {
		t.Fatalf("takeover shape alert = %+v (kinds %v), want critical hijack-pattern", a, findingKinds(a))
	}
	if !hasKind(a, "ns-churn") {
		t.Error("hijack alert lacks the underlying ns-churn finding")
	}

	// In-bailiwick move: new host under the parent zone is routine.
	if a := diffWith(t, nil, "ns9.other.gov.br"); hasKind(a, "hijack-pattern") {
		t.Error("in-bailiwick NS change flagged as hijack")
	}

	// Cataloged provider: moving to a known operator is routine.
	if a := diffWith(t, nil, "ns1.cloudflare.com"); hasKind(a, "hijack-pattern") {
		t.Errorf("move to cataloged provider flagged as hijack: %v", findingKinds(a))
	}

	// High spread: the "new" provider already hosts many monitored
	// domains in the baseline, so it is an established operator.
	var bulk []*measure.DomainResult
	for _, dom := range []string{"a.gov.br", "b.gov.br", "c.gov.br", "e.gov.br"} {
		bulk = append(bulk, healthyResult(dom, map[string]string{"ns1.evil-ops.com": "66.6.0.1"}))
	}
	if a := diffWith(t, bulk, "ns1.evil-ops.com"); hasKind(a, "hijack-pattern") {
		t.Error("high-spread provider flagged as hijack")
	}
}

func TestDifferAddrChangeAndFaults(t *testing.T) {
	hosts := map[string]string{"ns1.city.gov.br": "10.0.0.1"}
	d := NewDiffer(nil)
	d.SetBaseline(baselineOf(healthyResult("city.gov.br", hosts)))

	moved := healthyResult("city.gov.br", map[string]string{"ns1.city.gov.br": "10.9.9.9"})
	a := d.Diff(moved)
	if a == nil || a.Severity != SevInfo || !hasKind(a, "addr-change") {
		t.Fatalf("address rotation alert = %+v (kinds %v), want info addr-change", a, findingKinds(a))
	}
	if hasKind(a, "ns-churn") {
		t.Error("pure address change reported NS churn")
	}

	faulty := healthyResult("city.gov.br", hosts)
	faulty.Faults.Truncations = 3
	fa := d.Diff(faulty)
	if fa == nil || !hasKind(fa, "fault-signature") {
		t.Fatalf("new fault signature alert = %+v, want fault-signature", fa)
	}

	newDom := d.Diff(healthyResult("fresh.gov.br", map[string]string{"ns1.fresh.gov.br": "10.1.1.1"}))
	if newDom == nil || !hasKind(newDom, "new-domain") || newDom.Severity != SevInfo {
		t.Fatalf("new-domain alert = %+v", newDom)
	}
}
