package monitor

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"

	"govdns/internal/dnsname"
	"testing"
)

func testAlert(seq uint64, epoch int, domain string) *Alert {
	return &Alert{
		Seq: seq, Epoch: epoch, Domain: dnsname.MustParse(domain),
		Severity: SevWarning, PrevClass: "healthy", Class: "partially-lame",
		Findings: []Finding{
			{Kind: "class-flip", Severity: SevWarning, Detail: "healthy -> partially-lame"},
			{Kind: "addr-change", Severity: SevInfo, Detail: "ns1 moved"},
		},
	}
}

func logLines(t *testing.T, alerts ...*Alert) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, a := range alerts {
		line, err := a.marshalLine()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func TestReadAlertsStrict(t *testing.T) {
	good := logLines(t, testAlert(0, 1, "a.gov.br."), testAlert(1, 1, "b.gov.br."), testAlert(2, 2, "c.gov.br."))

	alerts, err := ReadAlerts(bytes.NewReader(good))
	if err != nil || len(alerts) != 3 {
		t.Fatalf("valid log: got %d alerts, err %v", len(alerts), err)
	}

	reject := func(name string, data []byte, wantSub string) {
		t.Helper()
		if _, err := ReadAlerts(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q lacks %q", name, err, wantSub)
		}
	}

	reject("gapped seq", logLines(t, testAlert(0, 1, "a.gov.br."), testAlert(2, 1, "b.gov.br.")), "seq")
	reject("decreasing epoch", logLines(t, testAlert(0, 2, "a.gov.br."), testAlert(1, 1, "b.gov.br.")), "epoch")
	reject("unterminated line", good[:len(good)-1], "unterminated")
	reject("unknown field", []byte(`{"seq":0,"epoch":1,"domain":"a.gov.br.","severity":"info","class":"healthy","bogus":1,"findings":[{"kind":"x","severity":"info","detail":"d"}]}`+"\n"), "")
	reject("bad severity", []byte(`{"seq":0,"epoch":1,"domain":"a.gov.br.","severity":"meh","class":"healthy","findings":[{"kind":"x","severity":"info","detail":"d"}]}`+"\n"), "severity")
	reject("no findings", []byte(`{"seq":0,"epoch":1,"domain":"a.gov.br.","severity":"info","class":"healthy","findings":[]}`+"\n"), "finding")
	reject("severity below max finding", logLines(t, &Alert{
		Seq: 0, Epoch: 1, Domain: dnsname.MustParse("a.gov.br."), Severity: SevInfo, Class: "healthy",
		Findings: []Finding{{Kind: "x", Severity: SevCritical, Detail: "d"}},
	}), "severity")
}

func TestAlertLogAppendAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	log, loaded, err := OpenAlertLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 0 || log.NextSeq() != 0 {
		t.Fatalf("fresh log: %d alerts, next seq %d", len(loaded), log.NextSeq())
	}
	if err := log.Append([]*Alert{testAlert(0, 1, "a.gov.br."), testAlert(1, 1, "b.gov.br.")}); err != nil {
		t.Fatal(err)
	}
	// Dense-seq enforcement: an append that skips a sequence number is a
	// programming error, not a log entry.
	if err := log.Append([]*Alert{testAlert(7, 1, "c.gov.br.")}); err == nil {
		t.Error("append with gapped seq accepted")
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, loaded, err := OpenAlertLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if len(loaded) != 2 || log2.NextSeq() != 2 {
		t.Fatalf("reopened log: %d alerts, next seq %d, want 2/2", len(loaded), log2.NextSeq())
	}
}

func TestOpenAlertLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "alerts.jsonl")
	whole := logLines(t, testAlert(0, 1, "a.gov.br."), testAlert(1, 1, "b.gov.br."))
	if err := os.WriteFile(path, append(append([]byte{}, whole...), []byte(`{"seq":2,"ep`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	log, loaded, err := OpenAlertLog(path)
	if err != nil {
		t.Fatalf("torn tail not recovered: %v", err)
	}
	defer log.Close()
	if len(loaded) != 2 || log.NextSeq() != 2 {
		t.Fatalf("after truncating torn tail: %d alerts, next seq %d", len(loaded), log.NextSeq())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, whole) {
		t.Errorf("torn bytes not truncated from disk:\n%q", data)
	}

	// A corrupt *complete* line is not a torn tail — it must refuse.
	if err := os.WriteFile(path, append(append([]byte{}, whole...), []byte("{\"seq\":9}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenAlertLog(path); err == nil {
		t.Error("corrupt terminated line accepted as torn tail")
	}
}

func TestWriteAlertRendering(t *testing.T) {
	var buf bytes.Buffer
	WriteAlert(&buf, testAlert(4, 2, "city.gov.br."))
	out := buf.String()
	for _, want := range []string{"#4", "epoch 2", "[warning]", "city.gov.br.", "class-flip", "healthy -> partially-lame"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered alert lacks %q:\n%s", want, out)
		}
	}
}
