// The epoch differ: per-domain change detection between consecutive
// scan epochs, built so one Diff call is a pure function of (baseline,
// result). Purity matters twice over: alerts come out bit-identical
// whatever the scan's concurrency, and the scanner's worker goroutines
// can call Diff concurrently as the trace-pinning predicate while the
// stream writer calls it again on the serialized emission path.
package monitor

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"govdns/internal/analysis"
	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/providers"
)

// Summary is the per-domain digest one epoch keeps for the next
// epoch's differ: classification, the combined nameserver view, the
// resolved address set, and the error/fault signature.
type Summary struct {
	Class        string
	ParentZone   dnsname.Name
	NS           []dnsname.Name // sorted parent ∪ child NS set
	Addrs        []netip.Addr   // sorted distinct nameserver addresses
	Err          string
	ErrTransient bool
	Faults       uint64
}

// Summarize reduces a scan result to the fields the differ compares.
func Summarize(r *measure.DomainResult) Summary {
	seen := make(map[dnsname.Name]bool)
	var ns []dnsname.Name
	for _, h := range r.ParentNS {
		if !seen[h] {
			seen[h] = true
			ns = append(ns, h)
		}
	}
	for _, h := range r.ChildNS() {
		if !seen[h] {
			seen[h] = true
			ns = append(ns, h)
		}
	}
	sort.Slice(ns, func(i, j int) bool { return dnsname.Compare(ns[i], ns[j]) < 0 })
	return Summary{
		Class:        r.Classify().String(),
		ParentZone:   r.ParentZone,
		NS:           ns,
		Addrs:        r.AllAddrs(),
		Err:          r.Err,
		ErrTransient: r.ErrTransient,
		Faults:       r.Faults.Total(),
	}
}

// classRank orders classifications by health so the differ can tell a
// downgrade from an upgrade. Higher is healthier.
var classRank = map[string]int{
	"healthy":        5,
	"partially-lame": 4,
	"no-delegation":  3,
	"fully-lame":     2,
	"walk-failure":   1,
}

// nsSpreadThreshold is the § VI-C hijack-forensics cut: a nameserver
// registrable domain hosting at most this many monitored domains in the
// baseline is "low spread" — not an established operator — and its
// sudden appearance in a delegation matches the takeover pattern.
const nsSpreadThreshold = 3

// Differ compares each new epoch's results against the previous
// complete epoch. SetBaseline swaps epochs between scans; Diff itself
// only reads, so it is safe from any number of goroutines.
type Differ struct {
	catalog  *providers.Catalog
	baseline map[dnsname.Name]Summary
	// spread counts, per nameserver registrable domain, how many
	// distinct baseline domains delegate to it — the online analogue of
	// the hijack-forensics provider-spread table.
	spread map[dnsname.Name]int
}

// NewDiffer builds a differ with no baseline yet (the first epoch emits
// no alerts). A nil catalog means providers.Default().
func NewDiffer(catalog *providers.Catalog) *Differ {
	if catalog == nil {
		catalog = providers.Default()
	}
	return &Differ{catalog: catalog}
}

// HasBaseline reports whether a previous epoch has been installed.
func (d *Differ) HasBaseline() bool { return d.baseline != nil }

// SetBaseline installs a completed epoch's summaries as the comparison
// base and recomputes the NS-spread table. Must not run concurrently
// with Diff (the monitor swaps baselines only between epochs).
func (d *Differ) SetBaseline(summaries map[dnsname.Name]Summary) {
	spread := make(map[dnsname.Name]int)
	for _, s := range summaries {
		perDomain := make(map[dnsname.Name]bool)
		for _, h := range s.NS {
			perDomain[analysis.NSDomain(h)] = true
		}
		for nd := range perDomain {
			spread[nd]++
		}
	}
	d.baseline, d.spread = summaries, spread
}

// Diff compares r against the baseline and returns the domain's alert
// for this epoch, or nil when nothing changed (or no baseline exists).
// Seq and Epoch are left zero for the caller to assign. Diff is pure
// with respect to the differ's state and safe to call concurrently.
func (d *Differ) Diff(r *measure.DomainResult) *Alert {
	if d == nil || d.baseline == nil {
		return nil
	}
	return d.diffSummary(r.Domain, Summarize(r))
}

// diffSummary is Diff for a caller that already summarized the result —
// the monitor summarizes each result once and feeds both its baseline
// map and the diff from it.
func (d *Differ) diffSummary(domain dnsname.Name, cur Summary) *Alert {
	if d == nil || d.baseline == nil {
		return nil
	}
	prev, known := d.baseline[domain]
	if !known {
		return finish(&Alert{Domain: domain, Class: cur.Class, Findings: []Finding{{
			Kind: "new-domain", Severity: SevInfo,
			Detail: fmt.Sprintf("not in previous epoch; classified %s", cur.Class),
		}}})
	}

	var findings []Finding
	if cur.Class != prev.Class {
		sev := SevInfo
		if classRank[cur.Class] < classRank[prev.Class] {
			sev = SevWarning
			// Total loss of service tops the taxonomy: the paper's
			// fully-lame bucket, or the walk itself failing.
			if cur.Class == "fully-lame" || cur.Class == "walk-failure" {
				sev = SevCritical
			}
		}
		findings = append(findings, Finding{
			Kind: "class-flip", Severity: sev,
			Detail: prev.Class + " -> " + cur.Class,
		})
	}

	added, removed := diffNames(prev.NS, cur.NS)
	switch {
	case len(added)+len(removed) > 0:
		findings = append(findings, Finding{
			Kind: "ns-churn", Severity: SevWarning,
			Detail: churnDetail(added, removed),
		})
		var susp []dnsname.Name
		for _, h := range added {
			if d.suspicious(h, cur.ParentZone) {
				susp = append(susp, h)
			}
		}
		if len(susp) > 0 {
			findings = append(findings, Finding{
				Kind: "hijack-pattern", Severity: SevCritical,
				Detail: "delegation moved to out-of-bailiwick, uncataloged, low-spread NS: " + joinNames(susp),
			})
		}
	case !addrsEqual(prev.Addrs, cur.Addrs):
		// Same NS hosts, different addresses: an address rotation, only
		// reported when no NS churn already explains it.
		findings = append(findings, Finding{
			Kind: "addr-change", Severity: SevInfo,
			Detail: fmt.Sprintf("nameserver addresses changed: %s -> %s", joinAddrs(prev.Addrs), joinAddrs(cur.Addrs)),
		})
	}

	switch {
	case cur.ErrTransient && !prev.ErrTransient:
		findings = append(findings, Finding{
			Kind: "transient", Severity: SevInfo,
			Detail: "transient fault signature appeared: " + cur.Err,
		})
	case cur.Err != "" && prev.Err == "" && cur.Class == prev.Class:
		// A new hard error that did not move the classification — worth
		// a line, since the class-flip finding will not carry it.
		findings = append(findings, Finding{
			Kind: "error", Severity: SevInfo,
			Detail: "error appeared: " + cur.Err,
		})
	}
	if cur.Faults > 0 && prev.Faults == 0 {
		findings = append(findings, Finding{
			Kind: "fault-signature", Severity: SevInfo,
			Detail: fmt.Sprintf("%d wire faults observed (none in previous epoch)", cur.Faults),
		})
	}

	if len(findings) == 0 {
		return nil
	}
	return finish(&Alert{Domain: domain, PrevClass: prev.Class, Class: cur.Class, Findings: findings})
}

// suspicious is the online form of the hijack-history heuristic (see
// analysis.SuspiciousTransitions): an added nameserver matches the
// takeover pattern when it sits outside the domain's own parent zone,
// belongs to no cataloged provider, and its registrable domain hosted
// almost nothing in the baseline.
func (d *Differ) suspicious(host, parentZone dnsname.Name) bool {
	if parentZone != "" && host.IsSubdomainOf(parentZone) {
		return false
	}
	if _, known := d.catalog.Identify(host); known {
		return false
	}
	return d.spread[analysis.NSDomain(host)] <= nsSpreadThreshold
}

// finish sets the alert's severity to the maximum over its findings.
func finish(a *Alert) *Alert {
	max := SevInfo
	for _, f := range a.Findings {
		if f.Severity > max {
			max = f.Severity
		}
	}
	a.Severity = max
	return a
}

// diffNames computes set differences of two sorted name slices.
func diffNames(prev, cur []dnsname.Name) (added, removed []dnsname.Name) {
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch c := dnsname.Compare(prev[i], cur[j]); {
		case c == 0:
			i++
			j++
		case c < 0:
			removed = append(removed, prev[i])
			i++
		default:
			added = append(added, cur[j])
			j++
		}
	}
	removed = append(removed, prev[i:]...)
	added = append(added, cur[j:]...)
	return added, removed
}

func churnDetail(added, removed []dnsname.Name) string {
	var parts []string
	for _, h := range added {
		parts = append(parts, "+"+h.String())
	}
	for _, h := range removed {
		parts = append(parts, "-"+h.String())
	}
	return "NS set changed: " + strings.Join(parts, " ")
}

func joinNames(names []dnsname.Name) string {
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n.String()
	}
	return strings.Join(parts, " ")
}

func joinAddrs(addrs []netip.Addr) string {
	if len(addrs) == 0 {
		return "(none)"
	}
	parts := make([]string, len(addrs))
	for i, a := range addrs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

func addrsEqual(a, b []netip.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
