// The alert stream: the monitor's durable, append-only record of every
// epoch-over-epoch change worth a human's attention.
//
// Alerts are deterministic artifacts, not log lines: they carry no
// timestamps or durations, only what the differ derived from two
// epochs' canonical scan results, plus a dense global sequence number.
// Two monitor runs over the same world therefore produce bit-identical
// alert logs whatever the concurrency, and a killed-and-resumed daemon
// reconverges on exactly the bytes an uninterrupted one would have
// written — the same contract the scan archive itself keeps.
package monitor

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"govdns/internal/dnsname"
)

// Severity ranks an alert for triage routing.
type Severity int

const (
	// SevInfo: a change worth recording, not worth waking anyone —
	// upgrades, address rotations, new fault signatures.
	SevInfo Severity = iota
	// SevWarning: service degradation or unexplained churn.
	SevWarning
	// SevCritical: the domain lost service entirely, or its delegation
	// moved in the pattern prior hijacks followed.
	SevCritical
)

var severityNames = map[Severity]string{
	SevInfo: "info", SevWarning: "warning", SevCritical: "critical",
}

func (s Severity) String() string {
	if name, ok := severityNames[s]; ok {
		return name
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name; the alert log is read
// by humans and shell pipelines before it is read by Go.
func (s Severity) MarshalJSON() ([]byte, error) {
	name, ok := severityNames[s]
	if !ok {
		return nil, fmt.Errorf("monitor: unknown severity %d", int(s))
	}
	return json.Marshal(name)
}

func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for sev, n := range severityNames {
		if n == name {
			*s = sev
			return nil
		}
	}
	return fmt.Errorf("monitor: unknown severity %q", name)
}

// Finding is one concrete observation inside an alert. Kind is a
// closed vocabulary (see diff.go): "class-flip", "ns-churn",
// "hijack-pattern", "addr-change", "transient", "error",
// "fault-signature", "new-domain".
type Finding struct {
	Kind     string   `json:"kind"`
	Severity Severity `json:"severity"`
	Detail   string   `json:"detail"`
}

// Alert aggregates one domain's findings for one epoch. Seq is dense
// and global across the whole alert log; Severity is the maximum over
// Findings.
type Alert struct {
	Seq       uint64       `json:"seq"`
	Epoch     int          `json:"epoch"`
	Domain    dnsname.Name `json:"domain"`
	Severity  Severity     `json:"severity"`
	PrevClass string       `json:"prev_class,omitempty"`
	Class     string       `json:"class"`
	Findings  []Finding    `json:"findings"`
}

func (a *Alert) validate() error {
	if a.Domain == "" {
		return errors.New("empty domain")
	}
	if a.Class == "" {
		return errors.New("empty class")
	}
	if len(a.Findings) == 0 {
		return errors.New("no findings")
	}
	max := SevInfo
	for _, f := range a.Findings {
		if f.Kind == "" {
			return errors.New("finding with empty kind")
		}
		if _, ok := severityNames[f.Severity]; !ok {
			return fmt.Errorf("finding with unknown severity %d", int(f.Severity))
		}
		if f.Severity > max {
			max = f.Severity
		}
	}
	if a.Severity != max {
		return fmt.Errorf("severity %s != max finding severity %s", a.Severity, max)
	}
	return nil
}

// marshalLine renders the alert's canonical log line, newline included.
func (a *Alert) marshalLine() ([]byte, error) {
	b, err := json.Marshal(a)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// sameAlert compares two alerts by their canonical encoding — the
// equality the bit-identical log contract is stated in.
func sameAlert(a, b *Alert) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && bytes.Equal(ab, bb)
}

// ReadAlerts strictly decodes an alert log: every line must be a valid
// alert, unknown fields are rejected, sequence numbers must be dense
// from the first record's, and epochs must be non-decreasing. Strict
// because the log is the daemon's recovery substrate — a reader that
// shrugs at a malformed line would let corruption propagate into the
// reconciled stream.
func ReadAlerts(r io.Reader) ([]*Alert, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var out []*Alert
	for lineNo := 1; len(data) > 0; lineNo++ {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("alert log line %d: unterminated line", lineNo)
		}
		line := data[:nl]
		data = data[nl+1:]
		a := new(Alert)
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(a); err != nil {
			return nil, fmt.Errorf("alert log line %d: %w", lineNo, err)
		}
		if dec.More() {
			return nil, fmt.Errorf("alert log line %d: trailing data after alert", lineNo)
		}
		if err := a.validate(); err != nil {
			return nil, fmt.Errorf("alert log line %d: %w", lineNo, err)
		}
		if a.Seq != uint64(len(out)) {
			return nil, fmt.Errorf("alert log line %d: seq %d, want dense %d", lineNo, a.Seq, len(out))
		}
		if len(out) > 0 && a.Epoch < out[len(out)-1].Epoch {
			return nil, fmt.Errorf("alert log line %d: epoch %d after epoch %d", lineNo, a.Epoch, out[len(out)-1].Epoch)
		}
		out = append(out, a)
	}
	return out, nil
}

// AlertLog is the durable append-only alert stream on disk. Appends are
// fsynced; the monitor calls Append only from the stream writer's
// checkpoint hook, so the log never runs ahead of the crash-safe scan
// prefix — the invariant resume reconciliation depends on.
type AlertLog struct {
	f    *os.File
	path string
	next uint64
}

// OpenAlertLog opens (creating if absent) the alert stream at path and
// strictly validates the existing content. A torn final line — a crash
// landed mid-write, leaving bytes after the last newline — is truncated
// away: the alert it held is covered by the scan checkpoint and will be
// regenerated by resume reconciliation. Any other malformation is an
// error, never a repair.
func OpenAlertLog(path string) (*AlertLog, []*Alert, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}
	valid := data
	if i := bytes.LastIndexByte(data, '\n'); i+1 < len(data) {
		valid = data[:i+1]
	}
	alerts, err := ReadAlerts(bytes.NewReader(valid))
	if err != nil {
		return nil, nil, fmt.Errorf("monitor: %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if len(valid) < len(data) {
		if err := f.Truncate(int64(len(valid))); err != nil {
			_ = f.Close()
			return nil, nil, fmt.Errorf("monitor: truncating torn alert tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(len(valid)), io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return &AlertLog{f: f, path: path, next: uint64(len(alerts))}, alerts, nil
}

// NextSeq is the sequence number the next appended alert must carry.
func (l *AlertLog) NextSeq() uint64 { return l.next }

// Append durably appends alerts — one canonical JSON line each, then
// one fsync for the batch — enforcing the dense-sequence contract.
func (l *AlertLog) Append(alerts []*Alert) error {
	if len(alerts) == 0 {
		return nil
	}
	var buf bytes.Buffer
	next := l.next
	for _, a := range alerts {
		if a.Seq != next {
			return fmt.Errorf("monitor: appending seq %d, log expects %d", a.Seq, next)
		}
		if err := a.validate(); err != nil {
			return fmt.Errorf("monitor: refusing to log invalid alert seq %d: %w", a.Seq, err)
		}
		line, err := a.marshalLine()
		if err != nil {
			return err
		}
		buf.Write(line)
		next++
	}
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.next = next
	return nil
}

// Close releases the underlying file.
func (l *AlertLog) Close() error { return l.f.Close() }

// WriteAlert renders an alert for a terminal: one header line, one
// indented line per finding. Shared by `govmon tail` and the demo.
func WriteAlert(w io.Writer, a *Alert) {
	classes := a.Class
	if a.PrevClass != "" && a.PrevClass != a.Class {
		classes = a.PrevClass + " -> " + a.Class
	}
	fmt.Fprintf(w, "#%d epoch %d [%s] %s (%s)\n", a.Seq, a.Epoch, a.Severity, a.Domain, classes)
	for _, f := range a.Findings {
		fmt.Fprintf(w, "  %-15s %-8s %s\n", f.Kind, f.Severity.String(), f.Detail)
	}
}
