// Package monitor is the continuous-monitoring layer over the streaming
// scanner: it re-scans a domain set epoch after epoch, diffs each
// epoch's canonical results against the previous one, and maintains a
// durable alert stream plus per-epoch trace retention for triage.
//
// Crash consistency is inherited from the scan stream rather than
// reinvented. Each epoch is one ScanStream run with its own checkpoint;
// alerts are buffered in memory and flushed (fsynced) only inside the
// stream writer's checkpoint hook, so the alert log never claims a
// result the scan archive could lose. On restart the monitor resumes
// the interrupted epoch from its checkpoint, deterministically
// recomputes the alerts the emitted prefix implies, verifies the
// logged alerts are a byte-identical prefix of that recomputation, and
// appends whatever a crash swallowed — converging on exactly the log an
// uninterrupted run would have written.
//
// State directory layout:
//
//	state.json            magic/version/scan-key/next-epoch (atomic)
//	alerts.jsonl          the global append-only alert stream
//	epoch-N.jsonl         epoch N's canonical scan archive
//	epoch-N.ckpt          epoch N's crash-safe scan checkpoint
//	epoch-N.traces.jsonl  retained span trees for epoch N (includes a
//	                      pinned trace for every alerted domain)
package monitor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/obs"
	"govdns/internal/providers"
	"govdns/internal/trace"
)

// Config parameterizes a Monitor.
type Config struct {
	// StateDir holds every durable artifact. Required.
	StateDir string
	// ScanKey names the monitored world/domain-set identity. A state
	// directory written under one key refuses to serve another, and
	// each epoch's stream checkpoint is keyed "<ScanKey> epoch=N".
	ScanKey string
	// CheckpointEvery is results between scan checkpoints (and so
	// between alert flushes); 0 takes the stream default (256).
	CheckpointEvery int
	// MaxBuffer bounds the stream reorder window; 0 takes the default.
	MaxBuffer int
	// Catalog identifies known DNS providers for the hijack heuristic;
	// nil means providers.Default().
	Catalog *providers.Catalog
	// Registry receives monitor, scanner, and trace instruments; nil
	// disables instrumentation (obs nil contract).
	Registry *obs.Registry
	// Trace bounds each epoch's flight recorder. The Pinned bucket is
	// where alerted domains' traces live; zero takes defaultPinned, not
	// the smaller trace-package default, because every alert is
	// supposed to carry its trace.
	Trace trace.Config
	// OnResult, when set, observes every emitted result after the
	// monitor's own diffing, under the stream writer's lock in emission
	// order — the daemon's progress hook, and the crash drill's kill
	// trigger.
	OnResult func(*measure.DomainResult)
}

// defaultPinned sizes the alert-trace ring generously: an epoch that
// flips more domains than this is an incident, not a triage session.
const defaultPinned = 1024

const (
	stateMagic   = "govmon-state"
	stateVersion = 1
)

type stateJSON struct {
	Magic     string `json:"magic"`
	Version   int    `json:"version"`
	ScanKey   string `json:"scan_key"`
	NextEpoch int    `json:"next_epoch"`
}

// Monitor runs epochs. It is not safe for concurrent use; the daemon
// loop owns it.
type Monitor struct {
	cfg     Config
	metrics *Metrics
	differ  *Differ
	alog    *AlertLog

	nextEpoch int
	// logged carries the alert-log tail loaded at Open, consumed by the
	// first RunEpoch's resume reconciliation and then dropped: within a
	// process, an epoch never ends with unflushed alerts.
	logged []*Alert

	// consecutiveFailures is atomic because the daemon's liveness probe
	// reads it from the HTTP goroutine while RunEpoch updates it.
	consecutiveFailures atomic.Int64
	// flight is the current/most recent epoch's recorder, kept so the
	// daemon can report retention counts after an epoch.
	flight *trace.FlightRecorder
}

// Open loads (or initializes) the monitor state under cfg.StateDir.
func Open(cfg Config) (*Monitor, error) {
	if cfg.StateDir == "" {
		return nil, errors.New("monitor: Config.StateDir required")
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	if cfg.Trace.Pinned == 0 {
		cfg.Trace.Pinned = defaultPinned
	}
	m := &Monitor{
		cfg:     cfg,
		metrics: NewMetrics(cfg.Registry),
		differ:  NewDiffer(cfg.Catalog),
	}
	st, err := loadState(m.statePath())
	if err != nil {
		return nil, err
	}
	if st != nil {
		if st.ScanKey != cfg.ScanKey {
			return nil, fmt.Errorf("monitor: state dir %s belongs to scan key %q, not %q",
				cfg.StateDir, st.ScanKey, cfg.ScanKey)
		}
		m.nextEpoch = st.NextEpoch
	}
	alog, logged, err := OpenAlertLog(filepath.Join(cfg.StateDir, "alerts.jsonl"))
	if err != nil {
		return nil, err
	}
	m.alog, m.logged = alog, logged
	if len(logged) > 0 {
		if st == nil {
			_ = alog.Close()
			return nil, fmt.Errorf("monitor: %s has alerts but no state.json", cfg.StateDir)
		}
		if last := logged[len(logged)-1].Epoch; last > m.nextEpoch {
			_ = alog.Close()
			return nil, fmt.Errorf("monitor: alert log reaches epoch %d but state says next epoch is %d",
				last, m.nextEpoch)
		}
	}
	if m.nextEpoch > 0 {
		base, err := loadEpochSummaries(m.epochPath(m.nextEpoch - 1))
		if err != nil {
			_ = alog.Close()
			return nil, fmt.Errorf("monitor: loading baseline epoch %d: %w", m.nextEpoch-1, err)
		}
		m.differ.SetBaseline(base)
	}
	if err := m.removeStaleCheckpoints(); err != nil {
		_ = alog.Close()
		return nil, err
	}
	return m, nil
}

// removeStaleCheckpoints deletes checkpoints of epochs the state has
// already advanced past. A crash between writing state.json
// (NextEpoch=N+1) and removing epoch-N.ckpt orphans that file: no
// resume of epoch N ever happens once the state points beyond it, so
// without this sweep the directory accumulates dead checkpoints. The
// current epoch's checkpoint (K == nextEpoch) is live resume state and
// is left alone.
func (m *Monitor) removeStaleCheckpoints() error {
	matches, err := filepath.Glob(filepath.Join(m.cfg.StateDir, "epoch-*.ckpt"))
	if err != nil {
		return err
	}
	for _, path := range matches {
		var k int
		if n, err := fmt.Sscanf(filepath.Base(path), "epoch-%d.ckpt", &k); err != nil || n != 1 {
			continue
		}
		if k >= m.nextEpoch {
			continue
		}
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("monitor: removing stale checkpoint %s: %w", path, err)
		}
	}
	return nil
}

// Close releases the alert log.
func (m *Monitor) Close() error { return m.alog.Close() }

// Epoch is the next epoch RunEpoch will run (== completed epochs).
func (m *Monitor) Epoch() int { return m.nextEpoch }

// ConsecutiveFailures reports the current failed-epoch streak — the
// daemon's liveness-check input. Unlike the rest of Monitor it is safe
// to call concurrently (health probes poll it while an epoch runs).
func (m *Monitor) ConsecutiveFailures() int { return int(m.consecutiveFailures.Load()) }

// Flight is the most recent epoch's flight recorder (nil before the
// first RunEpoch).
func (m *Monitor) Flight() *trace.FlightRecorder { return m.flight }

func (m *Monitor) statePath() string { return filepath.Join(m.cfg.StateDir, "state.json") }
func (m *Monitor) epochPath(n int) string {
	return filepath.Join(m.cfg.StateDir, fmt.Sprintf("epoch-%d.jsonl", n))
}
func (m *Monitor) ckptPath(n int) string {
	return filepath.Join(m.cfg.StateDir, fmt.Sprintf("epoch-%d.ckpt", n))
}

// TracesPath is where epoch n's retained span trees land.
func (m *Monitor) TracesPath(n int) string {
	return filepath.Join(m.cfg.StateDir, fmt.Sprintf("epoch-%d.traces.jsonl", n))
}

// EpochReport summarizes one completed epoch.
type EpochReport struct {
	Epoch   int
	Resumed bool
	// ResumedFrom is how many results a prior interrupted run had
	// already archived.
	ResumedFrom int
	Domains     int
	DigestHex   string
	// Alerts are this epoch's alerts in emission order, including any
	// recomputed during resume reconciliation.
	Alerts []*Alert
	// Traces is how many span trees were persisted for the epoch.
	Traces int
}

// RunEpoch executes one scan epoch: stream-scan src with scanner,
// diff each result against the previous epoch, append alerts, persist
// retained traces, and advance the epoch counter. The caller provides a
// fresh scanner (fresh resolver caches — a re-scan must re-measure) and
// a fresh source each epoch; RunEpoch installs the epoch's flight
// recorder and trace-pin predicate on the scanner.
//
// A cancelled or failed epoch leaves the checkpoint, archive prefix,
// and flushed alerts on disk and does not advance the epoch; the next
// RunEpoch (same process or a restart) resumes it. Traces are persisted
// on the graceful-cancel path too; only a hard kill loses trace detail
// for the interrupted epoch — never alerts.
func (m *Monitor) RunEpoch(ctx context.Context, scanner *measure.Scanner, src measure.DomainSource) (*EpochReport, error) {
	epoch := m.nextEpoch
	start := time.Now()
	rep := &EpochReport{Epoch: epoch}

	summaries := make(map[dnsname.Name]Summary)
	var pending []*Alert
	var logErr error
	nextSeq := m.alog.NextSeq()

	flight := trace.NewFlightRecorder(m.cfg.Trace)
	flight.AttachRegistry(m.cfg.Registry)
	m.flight = flight
	scanner.Trace = flight

	// Each result is summarized and diffed exactly once, on the worker
	// that produced it: the trace-pin predicate needs the verdict before
	// the span tree is offered, and the emission hook reuses it rather
	// than recomputing. Entries are popped at emission; results dropped
	// by a cancelled scan leave at most an epoch-bounded residue.
	type verdict struct {
		sum   Summary
		alert *Alert
	}
	var verdictMu sync.Mutex
	verdicts := make(map[*measure.DomainResult]verdict)
	scanner.TracePin = func(r *measure.DomainResult) bool {
		sum := Summarize(r)
		v := verdict{sum, m.differ.diffSummary(r.Domain, sum)}
		verdictMu.Lock()
		verdicts[r] = v
		verdictMu.Unlock()
		return v.alert != nil
	}
	evaluate := func(r *measure.DomainResult) (Summary, *Alert) {
		verdictMu.Lock()
		v, ok := verdicts[r]
		if ok {
			delete(verdicts, r)
		}
		verdictMu.Unlock()
		if ok {
			return v.sum, v.alert
		}
		sum := Summarize(r)
		return sum, m.differ.diffSummary(r.Domain, sum)
	}

	streamCfg := measure.StreamConfig{
		CheckpointPath:  m.ckptPath(epoch),
		CheckpointEvery: m.cfg.CheckpointEvery,
		MaxBuffer:       m.cfg.MaxBuffer,
		ScanKey:         fmt.Sprintf("%s epoch=%d", m.cfg.ScanKey, epoch),
		Metrics:         scanner.Metrics,
		OnResult: func(r *measure.DomainResult) {
			sum, a := evaluate(r)
			summaries[r.Domain] = sum
			if a != nil {
				a.Seq, a.Epoch = nextSeq, epoch
				nextSeq++
				pending = append(pending, a)
				rep.Alerts = append(rep.Alerts, a)
				m.metrics.recordAlert(a)
				m.metrics.setBacklog(len(pending))
			}
			if m.cfg.OnResult != nil {
				m.cfg.OnResult(r)
			}
		},
		// The durability hinge: alerts reach disk only here, after the
		// writer has flushed, fsynced, and atomically checkpointed the
		// scan prefix the alerts were derived from.
		OnCheckpoint: func(int) {
			if logErr != nil || len(pending) == 0 {
				return
			}
			if err := m.alog.Append(pending); err != nil {
				logErr = err
				return
			}
			pending = pending[:0]
			m.metrics.setBacklog(0)
		},
	}

	var sw *measure.StreamWriter
	_, statErr := os.Stat(m.ckptPath(epoch))
	if statErr == nil {
		var err error
		sw, rep.Alerts, err = m.resumeEpoch(epoch, streamCfg, summaries, &nextSeq)
		if err != nil {
			return nil, err
		}
		rep.Resumed, rep.ResumedFrom = true, sw.Emitted()
		defer func() { _ = sw.Close() }()
	} else if errors.Is(statErr, os.ErrNotExist) {
		f, err := os.Create(m.epochPath(epoch))
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		sw = measure.NewStreamWriter(f, streamCfg)
	} else {
		return nil, statErr
	}
	m.logged = nil

	scanErr := scanner.ScanStream(ctx, src, sw)
	// ScanStream has called Finish: the archive is flushed, the final
	// checkpoint written, and OnCheckpoint has drained pending alerts —
	// on the cancel path too.
	if logErr != nil {
		m.fail()
		return nil, fmt.Errorf("monitor: epoch %d alert log: %w", epoch, logErr)
	}
	// Persist whatever the recorder retained even when the scan was
	// cancelled: a graceful stop keeps its triage material.
	traces, traceErr := m.writeTraces(epoch, flight)
	if scanErr != nil {
		m.fail()
		return nil, fmt.Errorf("monitor: epoch %d: %w", epoch, scanErr)
	}
	if traceErr != nil {
		m.fail()
		return nil, fmt.Errorf("monitor: epoch %d traces: %w", epoch, traceErr)
	}
	rep.Traces = traces
	rep.Domains = sw.Emitted()
	rep.DigestHex = sw.DigestHex()

	if err := m.writeState(stateJSON{
		Magic: stateMagic, Version: stateVersion,
		ScanKey: m.cfg.ScanKey, NextEpoch: epoch + 1,
	}); err != nil {
		m.fail()
		return nil, err
	}
	// The checkpoint is now garbage (the epoch is complete); removing
	// it is what marks the epoch done for resume detection. The order
	// matters: state first, then remove. A crash in between only
	// orphans the file — state.json already points past this epoch, so
	// no restart resumes it, and Open sweeps stale checkpoints. The
	// reverse order would be a real bug (remove first and a crash
	// re-runs the epoch from scratch, re-emitting its alerts).
	_ = os.Remove(m.ckptPath(epoch))

	m.nextEpoch = epoch + 1
	m.differ.SetBaseline(summaries)
	m.consecutiveFailures.Store(0)
	m.metrics.recordEpoch(start, 0)
	return rep, nil
}

func (m *Monitor) fail() {
	m.metrics.recordFailure(int(m.consecutiveFailures.Add(1)))
}

// resumeEpoch reopens an interrupted epoch's stream and reconciles the
// alert log against the archived prefix: the prefix's results are
// re-diffed (deterministically — same baseline, same bytes), the
// already-logged alerts for this epoch must be a byte-identical prefix
// of that recomputation, and alerts a crash swallowed after their scan
// checkpoint landed are appended now. summaries is pre-seeded from the
// prefix so the next baseline covers domains this run will skip.
func (m *Monitor) resumeEpoch(epoch int, cfg measure.StreamConfig, summaries map[dnsname.Name]Summary, nextSeq *uint64) (*measure.StreamWriter, []*Alert, error) {
	sw, info, err := measure.ResumeStream(m.epochPath(epoch), cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("monitor: resuming epoch %d: %w", epoch, err)
	}
	prefix, err := loadResults(m.epochPath(epoch))
	if err != nil {
		_ = sw.Close()
		return nil, nil, fmt.Errorf("monitor: re-reading epoch %d prefix: %w", epoch, err)
	}
	if len(prefix) != info.Emitted {
		_ = sw.Close()
		return nil, nil, fmt.Errorf("monitor: epoch %d prefix has %d results, checkpoint says %d",
			epoch, len(prefix), info.Emitted)
	}

	var loggedEpoch []*Alert
	for _, a := range m.logged {
		if a.Epoch == epoch {
			loggedEpoch = append(loggedEpoch, a)
		}
	}
	baseSeq := m.alog.NextSeq() - uint64(len(loggedEpoch))

	var expected []*Alert
	seq := baseSeq
	for _, r := range prefix {
		summaries[r.Domain] = Summarize(r)
		if a := m.differ.Diff(r); a != nil {
			a.Seq, a.Epoch = seq, epoch
			seq++
			expected = append(expected, a)
		}
	}
	if len(loggedEpoch) > len(expected) {
		_ = sw.Close()
		return nil, nil, fmt.Errorf("monitor: epoch %d log has %d alerts but the archive prefix implies %d",
			epoch, len(loggedEpoch), len(expected))
	}
	for i, logged := range loggedEpoch {
		if !sameAlert(logged, expected[i]) {
			_ = sw.Close()
			return nil, nil, fmt.Errorf("monitor: epoch %d alert seq %d diverges from the archive prefix",
				epoch, logged.Seq)
		}
	}
	if err := m.alog.Append(expected[len(loggedEpoch):]); err != nil {
		_ = sw.Close()
		return nil, nil, fmt.Errorf("monitor: reconciling epoch %d alerts: %w", epoch, err)
	}
	for _, a := range expected[len(loggedEpoch):] {
		m.metrics.recordAlert(a)
	}
	*nextSeq = seq
	return sw, expected, nil
}

// writeTraces atomically persists the epoch's retained traces, merging
// with a prior interrupted run's file: a resumed epoch skips
// already-archived domains, so their traces exist only in the earlier
// file. New retention wins per domain.
func (m *Monitor) writeTraces(epoch int, flight *trace.FlightRecorder) (int, error) {
	retained := flight.Retained()
	path := m.TracesPath(epoch)
	var existing []*trace.DomainTrace
	if data, err := os.ReadFile(path); err == nil {
		existing, err = trace.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return 0, fmt.Errorf("existing %s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, err
	}
	have := make(map[dnsname.Name]bool, len(retained))
	for _, dt := range retained {
		have[dt.Domain] = true
	}
	merged := retained
	for _, dt := range existing {
		if !have[dt.Domain] {
			merged = append(merged, dt)
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Domain != merged[j].Domain {
			return merged[i].Domain < merged[j].Domain
		}
		return merged[i].Start.Before(merged[j].Start)
	})
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, merged); err != nil {
		return 0, err
	}
	if err := atomicWrite(path, buf.Bytes()); err != nil {
		return 0, err
	}
	return len(merged), nil
}

func (m *Monitor) writeState(st stateJSON) error {
	data, err := json.Marshal(&st)
	if err != nil {
		return err
	}
	return atomicWrite(m.statePath(), append(data, '\n'))
}

func loadState(path string) (*stateJSON, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	st := new(stateJSON)
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(st); err != nil {
		return nil, fmt.Errorf("monitor: %s: %w", path, err)
	}
	if st.Magic != stateMagic {
		return nil, fmt.Errorf("monitor: %s: not a monitor state file (magic %q)", path, st.Magic)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("monitor: %s: state version %d, want %d", path, st.Version, stateVersion)
	}
	if st.NextEpoch < 0 {
		return nil, fmt.Errorf("monitor: %s: negative epoch", path)
	}
	return st, nil
}

func loadResults(path string) ([]*measure.DomainResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return measure.ReadJSONL(f)
}

func loadEpochSummaries(path string) (map[dnsname.Name]Summary, error) {
	results, err := loadResults(path)
	if err != nil {
		return nil, err
	}
	summaries := make(map[dnsname.Name]Summary, len(results))
	for _, r := range results {
		summaries[r.Domain] = Summarize(r)
	}
	return summaries, nil
}

// atomicWrite is temp + fsync + rename, same discipline as the stream
// checkpoint: readers see the old bytes or the new bytes, never a torn
// middle.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return nil
}
