package monitor

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/measure"
	"govdns/internal/miniworld"
	"govdns/internal/obs"
	"govdns/internal/resolver"
)

// monitorWorld is the integration fixture: the hand-crafted miniworld
// plus extra provider-hosted children, so an epoch is long enough to
// kill mid-flight.
func monitorWorld() (*miniworld.World, []dnsname.Name) {
	w := miniworld.Build()
	extra := w.AddHostedChildren(32)
	return w, append(miniworld.Domains(), extra...)
}

// epochScanner builds the fresh per-epoch scanner RunEpoch requires:
// fresh resolver caches so the epoch re-measures instead of replaying
// the last epoch's cache.
func epochScanner(w *miniworld.World, workers int, reg *obs.Registry) *measure.Scanner {
	client := resolver.NewClient(w.Net)
	client.Timeout = 20 * time.Millisecond
	if reg != nil {
		client.SetMetrics(resolver.NewMetrics(reg))
	}
	it := resolver.NewIterator(client, w.Roots)
	s := measure.NewScanner(it)
	s.Concurrency = workers
	s.PerDomainParallelism = 2
	if reg != nil {
		s.Metrics = measure.NewScanMetrics(reg)
	}
	return s
}

// mutateWorld applies the between-epoch incident script: city's
// delegation is hijacked and lame's one working server dies.
func mutateWorld(w *miniworld.World) {
	w.HijackCity()
	w.Servers["ns1.lame.gov.br."].SetBehavior(authserver.BehaviorUnresponsive)
}

// gatedSource yields the first gate domains freely, then blocks until
// the context dies before yielding the rest. The miniworld sim is fast
// enough that an ungated kill test races: every domain finishes before
// cancellation propagates. Gating the feed pins the kill mid-epoch
// without touching emission order, so the killed archive stays a prefix
// of the uninterrupted run's.
func gatedSource(ctx context.Context, domains []dnsname.Name, gate int) measure.DomainSource {
	i := 0
	return func() (dnsname.Name, bool) {
		if i >= len(domains) {
			return "", false
		}
		if i == gate {
			<-ctx.Done()
		}
		d := domains[i]
		i++
		return d, true
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runTwoEpochs runs the epoch-0 baseline scan, the incident mutation,
// and the epoch-1 re-scan in a fresh state dir, returning the dir.
func runTwoEpochs(t *testing.T, workers int, reg *obs.Registry) string {
	t.Helper()
	dir := t.TempDir()
	w, domains := monitorWorld()
	m, err := Open(Config{StateDir: dir, ScanKey: "miniworld", CheckpointEvery: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	rep0, err := m.RunEpoch(ctx, epochScanner(w, workers, reg), measure.SliceSource(domains))
	if err != nil {
		t.Fatalf("epoch 0: %v", err)
	}
	if len(rep0.Alerts) != 0 {
		t.Fatalf("epoch 0 (no baseline) produced %d alerts", len(rep0.Alerts))
	}
	if rep0.Domains != len(domains) {
		t.Fatalf("epoch 0 covered %d of %d domains", rep0.Domains, len(domains))
	}
	mutateWorld(w)
	rep1, err := m.RunEpoch(ctx, epochScanner(w, workers, reg), measure.SliceSource(domains))
	if err != nil {
		t.Fatalf("epoch 1: %v", err)
	}
	if len(rep1.Alerts) == 0 {
		t.Fatal("epoch 1 saw the incident but produced no alerts")
	}
	return dir
}

// TestMonitorAlertsDeterministic is the alert differential: the alert
// log and the epoch archives must be bit-identical whatever the scan
// concurrency and whether instrumentation is attached — alerts inherit
// the scan's determinism contract.
func TestMonitorAlertsDeterministic(t *testing.T) {
	serial := runTwoEpochs(t, 1, nil)
	parallel := runTwoEpochs(t, 8, obs.NewRegistry())

	for _, name := range []string{"alerts.jsonl", "epoch-0.jsonl", "epoch-1.jsonl"} {
		a := mustRead(t, filepath.Join(serial, name))
		b := mustRead(t, filepath.Join(parallel, name))
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between serial and parallel+instrumented runs", name)
		}
	}

	alerts, err := ReadAlerts(bytes.NewReader(mustRead(t, filepath.Join(serial, "alerts.jsonl"))))
	if err != nil {
		t.Fatalf("ReadAlerts: %v", err)
	}
	if len(alerts) != 2 {
		t.Fatalf("incident produced %d alerts, want 2 (city hijack, lame flip):\n%+v", len(alerts), alerts)
	}
	city, lame := alerts[0], alerts[1]
	if city.Domain != "city.gov.br." || city.Severity != SevCritical || !hasKind(city, "hijack-pattern") {
		t.Errorf("alert 0 = %+v, want critical hijack-pattern for city.gov.br.", city)
	}
	if lame.Domain != "lame.gov.br." || lame.Severity != SevCritical || !hasKind(lame, "class-flip") {
		t.Errorf("alert 1 = %+v, want critical class-flip for lame.gov.br.", lame)
	}
	if lame.PrevClass != "partially-lame" || lame.Class != "fully-lame" {
		t.Errorf("lame flip %s -> %s, want partially-lame -> fully-lame", lame.PrevClass, lame.Class)
	}
}

// TestMonitorKillResumeAlertLog is the crash drill (the alert-stream
// analogue of TestScanStreamKillAtNResumeClean): kill the daemon
// mid-epoch, restart against the same state dir, and require the alert
// log to come out append-only, gap-free, and bit-identical to an
// uninterrupted run's. The lost-flush leg additionally simulates a hard
// kill landing between the scan checkpoint and the alert flush by
// deleting the flushed tail — resume reconciliation must regenerate it.
func TestMonitorKillResumeAlertLog(t *testing.T) {
	want := runTwoEpochs(t, 4, nil)
	wantAlerts := mustRead(t, filepath.Join(want, "alerts.jsonl"))
	wantEpoch1 := mustRead(t, filepath.Join(want, "epoch-1.jsonl"))

	for _, tamper := range []struct {
		name string
		fn   func(t *testing.T, alertPath string)
	}{
		{"clean-kill", func(*testing.T, string) {}},
		{"lost-flush-and-torn-tail", func(t *testing.T, alertPath string) {
			// Drop the last durable alert line (the flush a hard kill
			// would have lost) and leave a torn half-line behind it.
			data := mustRead(t, alertPath)
			trimmed := data[:len(data)-1] // strip final newline
			if i := bytes.LastIndexByte(trimmed, '\n'); i >= 0 {
				trimmed = trimmed[:i+1]
			} else {
				trimmed = nil
			}
			torn := append(trimmed, []byte(`{"seq":99,"epo`)...)
			if err := os.WriteFile(alertPath, torn, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tamper.name, func(t *testing.T) {
			dir := t.TempDir()
			w, domains := monitorWorld()
			killAt := 6
			n := 0
			armed := false
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := Config{
				StateDir: dir, ScanKey: "miniworld", CheckpointEvery: 4,
				OnResult: func(*measure.DomainResult) {
					if !armed {
						return
					}
					if n++; n == killAt {
						cancel()
					}
				},
			}
			m, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.RunEpoch(ctx, epochScanner(w, 4, nil), measure.SliceSource(domains)); err != nil {
				t.Fatalf("epoch 0: %v", err)
			}
			mutateWorld(w)
			armed = true
			rep, err := m.RunEpoch(ctx, epochScanner(w, 4, nil), gatedSource(ctx, domains, 2*killAt))
			if err == nil {
				t.Fatalf("killed epoch returned no error (emitted %d)", rep.Domains)
			}
			if m.ConsecutiveFailures() != 1 {
				t.Errorf("failure streak = %d, want 1", m.ConsecutiveFailures())
			}
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			// The interrupted epoch's archive must be a clean prefix.
			killed, err := loadResults(filepath.Join(dir, "epoch-1.jsonl"))
			if err != nil {
				t.Fatalf("killed epoch prefix unreadable: %v", err)
			}
			if len(killed) < killAt || len(killed) >= len(domains) {
				t.Fatalf("kill landed at %d emitted of %d: not a mid-epoch interruption", len(killed), len(domains))
			}
			alertsAfterKill := mustRead(t, filepath.Join(dir, "alerts.jsonl"))
			tamper.fn(t, filepath.Join(dir, "alerts.jsonl"))

			// "Restart the daemon": a fresh Monitor over the same state.
			m2, err := Open(Config{StateDir: dir, ScanKey: "miniworld", CheckpointEvery: 4})
			if err != nil {
				t.Fatalf("reopening state: %v", err)
			}
			defer m2.Close()
			if m2.Epoch() != 1 {
				t.Fatalf("reopened monitor at epoch %d, want 1 (in progress)", m2.Epoch())
			}
			rep2, err := m2.RunEpoch(context.Background(), epochScanner(w, 4, nil), measure.SliceSource(domains))
			if err != nil {
				t.Fatalf("resumed epoch: %v", err)
			}
			if !rep2.Resumed || rep2.ResumedFrom != len(killed) {
				t.Errorf("resume report %+v, want Resumed from %d", rep2, len(killed))
			}
			if rep2.Domains != len(domains) {
				t.Errorf("resumed epoch emitted %d of %d", rep2.Domains, len(domains))
			}

			final := mustRead(t, filepath.Join(dir, "alerts.jsonl"))
			if !bytes.Equal(final, wantAlerts) {
				t.Errorf("resumed alert log differs from uninterrupted run:\n--- got ---\n%s--- want ---\n%s", final, wantAlerts)
			}
			if tamper.name == "clean-kill" && !bytes.HasPrefix(final, alertsAfterKill) {
				t.Error("alert log was rewritten, not appended")
			}
			if got := mustRead(t, filepath.Join(dir, "epoch-1.jsonl")); !bytes.Equal(got, wantEpoch1) {
				t.Error("resumed epoch archive differs from uninterrupted run")
			}
		})
	}
}

// TestMonitorStaleCheckpointSweep: a crash between advancing state.json
// and removing the finished epoch's checkpoint orphans the ckpt file —
// no resume ever consults an epoch the state has passed. Open must sweep
// such stale checkpoints while leaving the current epoch's (live resume
// state) untouched.
func TestMonitorStaleCheckpointSweep(t *testing.T) {
	dir := t.TempDir()
	w, domains := monitorWorld()
	m, err := Open(Config{StateDir: dir, ScanKey: "miniworld"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunEpoch(context.Background(), epochScanner(w, 4, nil), measure.SliceSource(domains)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Recreate the orphan the crash window leaves behind (epoch 0 is
	// complete; state.json already says next_epoch=1), plus a live
	// checkpoint for the in-progress epoch 1.
	stale := filepath.Join(dir, "epoch-0.ckpt")
	live := filepath.Join(dir, "epoch-1.ckpt")
	for _, p := range []string{stale, live} {
		if err := os.WriteFile(p, []byte("ckpt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	m2, err := Open(Config{StateDir: dir, ScanKey: "miniworld"})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale %s survived Open (err=%v), want swept", stale, err)
	}
	if _, err := os.Stat(live); err != nil {
		t.Errorf("live %s: %v, want kept for resume", live, err)
	}
}

// TestMonitorStateGuards: a state dir refuses to serve a different scan
// key, and a completed state reopens at the right epoch with its
// baseline loaded.
func TestMonitorStateGuards(t *testing.T) {
	dir := t.TempDir()
	w, domains := monitorWorld()
	m, err := Open(Config{StateDir: dir, ScanKey: "key-a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunEpoch(context.Background(), epochScanner(w, 4, nil), measure.SliceSource(domains)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Config{StateDir: dir, ScanKey: "key-b"}); err == nil {
		t.Error("state dir served a different scan key")
	}

	m2, err := Open(Config{StateDir: dir, ScanKey: "key-a"})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Epoch() != 1 {
		t.Errorf("reopened at epoch %d, want 1", m2.Epoch())
	}
	if !m2.differ.HasBaseline() {
		t.Error("reopened monitor has no baseline despite a completed epoch")
	}
}
