package udpx

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"
)

// srvIP is the nominal (simulated-topology) server address tests query;
// AddrOverride routes it to whatever loopback socket a test stands up,
// the same pattern the e2e serving suite uses.
var srvIP = netip.MustParseAddr("192.0.2.10")

// startUDP binds a loopback UDP socket, runs handler over it until the
// socket closes, and returns the bound address.
func startUDP(t testing.TB, handler func(*net.UDPConn)) netip.AddrPort {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("bind responder: %v", err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	go handler(conn)
	return conn.LocalAddr().(*net.UDPAddr).AddrPort()
}

// echoLoop answers every datagram with its own bytes — transaction ID
// preserved, which is all the demux layer needs from a peer. The loop
// is deliberately allocation-free so the zero-alloc gate can run it in
// the background.
func echoLoop(conn *net.UDPConn) {
	var buf [bufSize]byte
	for {
		n, src, err := conn.ReadFromUDPAddrPort(buf[:])
		if err != nil {
			return
		}
		_, _ = conn.WriteToUDPAddrPort(buf[:n], src)
	}
}

// blackholeLoop consumes datagrams and never answers.
func blackholeLoop(conn *net.UDPConn) {
	var buf [bufSize]byte
	for {
		if _, _, err := conn.ReadFromUDPAddrPort(buf[:]); err != nil {
			return
		}
	}
}

func newTest(t testing.TB, cfg Config) *BatchTransport {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	return tr
}

// testQuery builds a minimal 16-byte datagram: caller transaction ID in
// the header slot, nonce in the payload so responses can be matched to
// the exchange that sent them.
func testQuery(id uint16, nonce uint32) []byte {
	q := make([]byte, 16)
	binary.BigEndian.PutUint16(q, id)
	binary.BigEndian.PutUint32(q[12:], nonce)
	return q
}

// TestBatchExchangeEcho runs a concurrent exchange storm against an
// echo server on both I/O paths and checks every response comes back on
// the exchange that sent its query, with the caller's transaction ID
// restored — the demux table, QID rewriting, and buffer pooling all in
// one pass.
func TestBatchExchangeEcho(t *testing.T) {
	for _, portable := range []bool{false, true} {
		name := "os"
		if portable {
			name = "portable"
		}
		t.Run(name, func(t *testing.T) {
			echo := startUDP(t, echoLoop)
			tr := newTest(t, Config{
				AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: echo},
				Portable:     portable,
			})
			const workers, perWorker = 32, 50
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						// Deliberately colliding caller IDs: every worker
						// uses the same ones, so only the transport's own
						// per-destination allocation keeps the wire sane.
						id := uint16(i)
						nonce := uint32(g)<<16 | uint32(i)
						q := testQuery(id, nonce)
						resp, err := tr.Exchange(context.Background(), srvIP, q)
						if err != nil {
							errs <- fmt.Errorf("worker %d query %d: %v", g, i, err)
							return
						}
						if got := binary.BigEndian.Uint16(resp); got != id {
							errs <- fmt.Errorf("worker %d query %d: transaction ID %d, want %d", g, i, got, id)
							return
						}
						if got := binary.BigEndian.Uint32(resp[12:]); got != nonce {
							errs <- fmt.Errorf("worker %d query %d: nonce %#x, want %#x (cross-delivered response)", g, i, got, nonce)
							return
						}
						tr.ReleaseResponse(resp)
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			if n := tr.pending(); n != 0 {
				t.Errorf("demux table holds %d entries after all exchanges returned", n)
			}
			st := tr.Stats()
			if st.Exchanges != workers*perWorker {
				t.Errorf("Exchanges = %d, want %d", st.Exchanges, workers*perWorker)
			}
			if !portable && osBatchSupported && st.SyscallsSaved == 0 {
				t.Errorf("OS batch path saved no syscalls across %d concurrent exchanges", workers*perWorker)
			}
		})
	}
}

// TestQIDExhaustion pins the loud-failure contract: the 65537th
// concurrent reservation against one server must fail with
// ErrQIDExhausted, not silently reuse a live ID.
func TestQIDExhaustion(t *testing.T) {
	tr := newTest(t, Config{Sockets: 1})
	dest := netip.MustParseAddrPort("192.0.2.1:53")
	for i := 0; i < maxInflightPerDest; i++ {
		w, gen := tr.getWaiter()
		if _, err := tr.reserve(dest, w, gen); err != nil {
			t.Fatalf("reservation %d failed early: %v", i, err)
		}
	}
	w, gen := tr.getWaiter()
	if _, err := tr.reserve(dest, w, gen); !errors.Is(err, ErrQIDExhausted) {
		t.Fatalf("reservation %d: err = %v, want ErrQIDExhausted", maxInflightPerDest, err)
	}
	if n := tr.pending(); n != maxInflightPerDest {
		t.Fatalf("table holds %d entries, want %d", n, maxInflightPerDest)
	}
	// A second destination still has a free ID space.
	w2, gen2 := tr.getWaiter()
	if _, err := tr.reserve(netip.MustParseAddrPort("192.0.2.2:53"), w2, gen2); err != nil {
		t.Fatalf("other destination refused: %v", err)
	}
}

// TestCancelChurnNoLeak cancels a storm of exchanges against a server
// that never answers and asserts the demux table drains to empty — a
// leaked entry would pin its transaction ID forever.
func TestCancelChurnNoLeak(t *testing.T) {
	hole := startUDP(t, blackholeLoop)
	tr := newTest(t, Config{
		AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: hole},
		Timeout:      time.Minute, // the wheel must not be the one cleaning up
	})
	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(1+i%5)*time.Millisecond)
				_, err := tr.Exchange(ctx, srvIP, testQuery(uint16(i), uint32(g)))
				cancel()
				if err == nil {
					t.Errorf("worker %d query %d: blackholed exchange succeeded", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := tr.pending(); n != 0 {
		t.Fatalf("demux table holds %d entries after cancel churn, want 0", n)
	}
	if st := tr.Stats(); st.Cancels == 0 {
		t.Fatalf("no cancellations recorded across %d cancelled exchanges", workers*perWorker)
	}
	if st := tr.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight gauge = %d after churn, want 0", st.Inflight)
	}
}

// stormLoop is a hostile responder: echoes each query a seeded-random
// 1–3 times and sprays stray datagrams with random transaction IDs at
// the client between answers. The duplicates and strays must all land
// as demux misses, never as cross-delivered responses; run under -race
// this doubles as the deliver/cancel race exercise.
func stormLoop(seed int64) func(*net.UDPConn) {
	return func(conn *net.UDPConn) {
		rng := rand.New(rand.NewSource(seed))
		var buf [bufSize]byte
		var stray [12]byte
		for {
			n, src, err := conn.ReadFromUDPAddrPort(buf[:])
			if err != nil {
				return
			}
			copies := 1 + rng.Intn(3)
			for c := 0; c < copies; c++ {
				_, _ = conn.WriteToUDPAddrPort(buf[:n], src)
			}
			for s := rng.Intn(3); s > 0; s-- {
				binary.BigEndian.PutUint16(stray[:], uint16(rng.Intn(1<<16)))
				_, _ = conn.WriteToUDPAddrPort(stray[:], src)
			}
		}
	}
}

// TestStrayDuplicateStorm drives exchanges through the hostile
// responder above: every exchange must still get exactly its own
// answer, the debris must show up in the miss counter, and the table
// must drain.
func TestStrayDuplicateStorm(t *testing.T) {
	storm := startUDP(t, stormLoop(42))
	tr := newTest(t, Config{
		AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: storm},
	})
	const workers, perWorker = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				nonce := uint32(g)<<16 | uint32(i)
				resp, err := tr.Exchange(context.Background(), srvIP, testQuery(uint16(i), nonce))
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d: %v", g, i, err)
					return
				}
				if got := binary.BigEndian.Uint32(resp[12:]); got != nonce {
					errs <- fmt.Errorf("worker %d query %d: nonce %#x, want %#x (storm cross-delivery)", g, i, got, nonce)
					return
				}
				tr.ReleaseResponse(resp)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Give the last round of duplicates a moment to land as misses.
	time.Sleep(50 * time.Millisecond)
	if n := tr.pending(); n != 0 {
		t.Errorf("demux table holds %d entries after storm", n)
	}
	if st := tr.Stats(); st.DemuxMisses == 0 {
		t.Errorf("storm produced no demux misses; responder not hostile enough or misses misrouted")
	}
}

// TestWheelTimeoutSemantics is the batch-path port of
// TestUDPTransportTimeout: with a context carrying no deadline, the
// transport's own timeout must fire from the timer wheel — never early,
// and within roughly one wheel tick of the deadline.
func TestWheelTimeoutSemantics(t *testing.T) {
	hole := startUDP(t, blackholeLoop)
	const (
		timeout = 100 * time.Millisecond
		tick    = 25 * time.Millisecond
	)
	tr := newTest(t, Config{
		AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: hole},
		Timeout:      timeout,
		WheelTick:    tick,
		WheelSlots:   64,
	})
	start := time.Now()
	_, err := tr.Exchange(context.Background(), srvIP, testQuery(1, 1))
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed < timeout-time.Millisecond {
		t.Fatalf("timeout fired after %v, before the %v deadline", elapsed, timeout)
	}
	// Deadline rounds up to a tick boundary (≤ 1 tick) and the sweep
	// runs on the next ticker firing (≤ 1 tick); anything beyond
	// timeout + 2 ticks plus scheduler slack is a wheel bug.
	if limit := timeout + 2*tick + 50*time.Millisecond; elapsed > limit {
		t.Fatalf("timeout fired after %v, want within %v", elapsed, limit)
	}
	if st := tr.Stats(); st.WheelTimeouts != 1 {
		t.Fatalf("WheelTimeouts = %d, want 1", st.WheelTimeouts)
	}
}

// TestBlackholeIsolation pins the reason the wheel exists: one dead
// server's queries time out on their own schedule while a live server
// sharing the transport (and possibly the socket) answers at full
// speed throughout.
func TestBlackholeIsolation(t *testing.T) {
	echo := startUDP(t, echoLoop)
	hole := startUDP(t, blackholeLoop)
	deadIP := netip.MustParseAddr("192.0.2.66")
	const timeout = 500 * time.Millisecond
	tr := newTest(t, Config{
		AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: echo, deadIP: hole},
		Timeout:      timeout,
		WheelTick:    10 * time.Millisecond,
		Sockets:      1, // force both servers onto one socket
	})
	const n = 20
	var wg sync.WaitGroup
	liveDur := make([]time.Duration, n)
	liveErr := make([]error, n)
	deadErr := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			resp, err := tr.Exchange(context.Background(), srvIP, testQuery(uint16(i), uint32(i)))
			liveDur[i] = time.Since(start)
			liveErr[i] = err
			if err == nil {
				tr.ReleaseResponse(resp)
			}
		}(i)
		go func(i int) {
			defer wg.Done()
			_, err := tr.Exchange(context.Background(), deadIP, testQuery(uint16(i), uint32(i)))
			deadErr[i] = err
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if liveErr[i] != nil {
			t.Errorf("live query %d failed: %v", i, liveErr[i])
		} else if liveDur[i] > timeout/2 {
			t.Errorf("live query %d took %v — stalled behind the blackholed server", i, liveDur[i])
		}
		if !errors.Is(deadErr[i], ErrTimeout) {
			t.Errorf("blackholed query %d: err = %v, want ErrTimeout", i, deadErr[i])
		}
	}
}

// TestCloseFailsPending verifies Close resolves every in-flight
// exchange with ErrClosed and leaves the table empty, and that the
// transport refuses new exchanges afterwards.
func TestCloseFailsPending(t *testing.T) {
	hole := startUDP(t, blackholeLoop)
	tr := newTest(t, Config{
		AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: hole},
		Timeout:      time.Minute,
	})
	const n = 8
	var wg sync.WaitGroup
	errsArr := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errsArr[i] = tr.Exchange(context.Background(), srvIP, testQuery(uint16(i), uint32(i)))
		}(i)
	}
	// Let the exchanges register before closing.
	deadline := time.Now().Add(2 * time.Second)
	for tr.pending() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for i, err := range errsArr {
		if !errors.Is(err, ErrClosed) {
			t.Errorf("exchange %d: err = %v, want ErrClosed", i, err)
		}
	}
	if n := tr.pending(); n != 0 {
		t.Errorf("table holds %d entries after Close", n)
	}
	if _, err := tr.Exchange(context.Background(), srvIP, testQuery(0, 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close Exchange: err = %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestWaiterGenerationReuse pins the packed gen+state CAS: a stale
// completion attempt from a waiter's previous life must lose against
// the recycled waiter's new generation.
func TestWaiterGenerationReuse(t *testing.T) {
	w := &waiter{ch: make(chan wresult, 1)}
	gen1 := w.nextGen()
	if !w.complete(gen1, stDelivered) {
		t.Fatal("fresh generation failed to complete")
	}
	gen2 := w.nextGen()
	if w.complete(gen1, stTimedOut) {
		t.Fatal("stale generation completed a recycled waiter")
	}
	if !w.complete(gen2, stTimedOut) {
		t.Fatal("current generation blocked by stale attempt")
	}
}
