//go:build linux && (amd64 || arm64)

package udpx

import (
	"net/netip"
	"syscall"
	"unsafe"
)

// readBatchOS is ReadBatch over recvmmsg: one netpoller-integrated
// syscall round fills up to min(len(bufs), batch) caller buffers.
// Arming writes preallocated header/iovec/sockaddr slots, so the
// steady state allocates nothing.
func (pc *PacketConn) readBatchOS(bufs [][]byte, sizes []int, addrs []netip.AddrPort) (int, error) {
	os := &pc.os
	b := len(bufs)
	if b > len(os.rhdrs) {
		b = len(os.rhdrs)
	}
	for i := 0; i < b; i++ {
		os.riovs[i].Base = &bufs[i][0]
		os.riovs[i].Len = uint64(len(bufs[i]))
		h := &os.rhdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&os.rnames[i])),
			Namelen: syscall.SizeofSockaddrInet6,
			Iov:     &os.riovs[i],
			Iovlen:  1,
		}
		h.n = 0
	}
	os.rwant = b
	if err := os.rc.Read(os.recvFn); err != nil {
		return 0, err
	}
	got := os.got
	if got <= 0 {
		return 0, nil // transient; caller retries
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(os.rhdrs[i].n)
		src, ok := getSockaddr(&os.rnames[i])
		if !ok {
			src = netip.AddrPort{}
		}
		addrs[i] = src
	}
	return got, nil
}

// writeBatchOS is WriteBatch over sendmmsg, chunked to the armed batch
// capacity. A persistent kernel error drops the rest of the chunk.
func (pc *PacketConn) writeBatchOS(bufs [][]byte, addrs []netip.AddrPort) {
	os := &pc.os
	for off := 0; off < len(bufs); off += len(os.shdrs) {
		end := off + len(os.shdrs)
		if end > len(bufs) {
			end = len(bufs)
		}
		n := end - off
		for i := 0; i < n; i++ {
			os.siovs[i].Base = &bufs[off+i][0]
			os.siovs[i].Len = uint64(len(bufs[off+i]))
			nameLen := putSockaddr(&os.snames[i], addrs[off+i])
			h := &os.shdrs[i]
			h.hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&os.snames[i])),
				Namelen: nameLen,
				Iov:     &os.siovs[i],
				Iovlen:  1,
			}
			h.n = 0
		}
		os.sendN = n
		os.sendOff = 0
		for os.sendOff < n {
			if err := os.rc.Write(os.sendFn); err != nil || os.sn <= 0 {
				return
			}
			os.sendOff += os.sn
		}
	}
}
