//go:build linux && (amd64 || arm64)

// Batched UDP syscalls via sendmmsg(2)/recvmmsg(2). The module has no
// dependencies, so this speaks raw syscall numbers through the stdlib
// syscall package instead of x/sys/unix; the numbers and the mmsghdr
// layout are per-arch (mmsg_linux_amd64.go / mmsg_linux_arm64.go carry
// the syscall numbers; Msghdr.Iovlen is uint64 on both, which the build
// tag guarantees). The RawConn Read/Write callbacks integrate with the
// runtime netpoller: the syscalls run MSG_DONTWAIT and return false on
// EAGAIN, parking the goroutine until the socket is ready instead of
// spinning.
package udpx

import (
	"encoding/binary"
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

const osBatchSupported = true

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length. Go pads the struct to 64 bytes on amd64/arm64,
// matching the C layout.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// osSock is the per-socket batched-syscall state: preallocated header,
// iovec, and sockaddr arrays sized to cfg.Batch, so arming a batch
// writes fields but never allocates. rbufs holds the receive buffers
// currently lent to the kernel; delivery transfers them out and the
// next cycle replenishes from the packet pool.
type osSock struct {
	rc syscall.RawConn

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet6
	rbufs  [][]byte

	shdrs  []mmsghdr
	siovs  []syscall.Iovec
	snames []syscall.RawSockaddrInet6

	// The RawConn callbacks are built once here and communicate through
	// the fields below — a fresh closure per batch would put one heap
	// allocation on the steady-state hot path. recvFn/got are owned by
	// the recvLoop goroutine, sendFn/sendOff/sendN/sn by the sendLoop
	// goroutine.
	recvFn             func(fd uintptr) bool
	got, rwant         int
	sendFn             func(fd uintptr) bool
	sendOff, sendN, sn int
}

func initOS(s *sock) error {
	return initOSState(&s.os, s.conn, cap(s.batch))
}

// initOSState builds the batched-syscall state over conn for any owner
// of an osSock — the transport's per-socket loops and the serving-side
// PacketConn share it.
func initOSState(os *osSock, conn *net.UDPConn, batch int) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	*os = osSock{
		rc:     rc,
		rhdrs:  make([]mmsghdr, batch),
		riovs:  make([]syscall.Iovec, batch),
		rnames: make([]syscall.RawSockaddrInet6, batch),
		rbufs:  make([][]byte, batch),
		shdrs:  make([]mmsghdr, batch),
		siovs:  make([]syscall.Iovec, batch),
		snames: make([]syscall.RawSockaddrInet6, batch),
		rwant:  batch,
	}
	os.recvFn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&os.rhdrs[0])), uintptr(os.rwant),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				os.got = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				os.got = -1
				return true
			}
		}
	}
	os.sendFn = func(fd uintptr) bool {
		for {
			r1, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&os.shdrs[os.sendOff])), uintptr(os.sendN-os.sendOff),
				syscall.MSG_DONTWAIT, 0, 0)
			switch errno {
			case 0:
				os.sn = int(r1)
				return true
			case syscall.EINTR:
				continue
			case syscall.EAGAIN:
				return false
			default:
				os.sn = -1
				return true
			}
		}
	}
	return nil
}

// putSockaddr encodes dest into the raw sockaddr slot (the Inet6
// storage is large enough for both families) and returns the length
// the kernel expects. Port is big-endian in raw sockaddrs.
func putSockaddr(sa *syscall.RawSockaddrInet6, dest netip.AddrPort) uint32 {
	if a := dest.Addr(); a.Is4() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: a.As4()}
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa4.Port))[:], dest.Port())
		return syscall.SizeofSockaddrInet4
	}
	*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: dest.Addr().As16()}
	binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:], dest.Port())
	return syscall.SizeofSockaddrInet6
}

// getSockaddr decodes a kernel-filled raw sockaddr into a netip
// address (deliver unmaps v4-in-v6 for consistent demux keys).
func getSockaddr(sa *syscall.RawSockaddrInet6) (netip.AddrPort, bool) {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		port := binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&sa4.Port))[:])
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), port), true
	case syscall.AF_INET6:
		port := binary.BigEndian.Uint16((*[2]byte)(unsafe.Pointer(&sa.Port))[:])
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), port), true
	}
	return netip.AddrPort{}, false
}

// sendBatchOS pushes reqs out with as few sendmmsg calls as the kernel
// allows and returns the syscall count. A persistent error drops the
// unsent tail — indistinguishable from network loss, which the wheel
// and the resolver's retries already handle.
func (s *sock) sendBatchOS(reqs []*sendReq) int {
	os := &s.os
	n := len(reqs)
	for i, r := range reqs {
		os.siovs[i].Base = &r.b[0]
		os.siovs[i].Len = uint64(r.n)
		nameLen := putSockaddr(&os.snames[i], r.dest)
		h := &os.shdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&os.snames[i])),
			Namelen: nameLen,
			Iov:     &os.siovs[i],
			Iovlen:  1,
		}
		h.n = 0
	}
	os.sendN = n
	os.sendOff = 0
	syscalls := 0
	for os.sendOff < n {
		err := os.rc.Write(os.sendFn)
		syscalls++
		if err != nil || os.sn <= 0 {
			break
		}
		os.sendOff += os.sn
	}
	return syscalls
}

// recvBatchOS drains up to one batch of datagrams in a single recvmmsg
// and delivers each. Returns false when the socket is closed (the
// recvLoop's exit signal), true otherwise.
func (s *sock) recvBatchOS() bool {
	os := &s.os
	b := len(os.rhdrs)
	for i := 0; i < b; i++ {
		if os.rbufs[i] == nil {
			os.rbufs[i] = getBuf()
		}
		os.riovs[i].Base = &os.rbufs[i][0]
		os.riovs[i].Len = bufSize
		h := &os.rhdrs[i]
		h.hdr = syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&os.rnames[i])),
			Namelen: syscall.SizeofSockaddrInet6,
			Iov:     &os.riovs[i],
			Iovlen:  1,
		}
		h.n = 0
	}
	err := os.rc.Read(os.recvFn)
	if err != nil {
		return false
	}
	got := os.got
	if got <= 0 {
		// A transient syscall error: if it was the socket dying, the
		// next RawConn.Read returns the closed error and we exit then.
		return !s.t.closed.Load()
	}
	m := s.t.metrics()
	m.recvBatch.Inc()
	if got > 1 {
		m.sysSaved.Add(uint64(got - 1))
	}
	for i := 0; i < got; i++ {
		n := int(os.rhdrs[i].n)
		buf := os.rbufs[i]
		os.rbufs[i] = nil
		src, ok := getSockaddr(&os.rnames[i])
		if !ok || n > bufSize {
			putBuf(buf)
			m.malformed.Inc()
			continue
		}
		s.t.deliver(buf[:n], src)
	}
	return true
}
