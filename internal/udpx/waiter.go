package udpx

import (
	"net/netip"
	"sync/atomic"
	"time"
)

// Waiter completion states. A waiter's lifecycle is a single packed
// atomic word: generation in the high 32 bits, state in the low 32.
// Completion is one CAS from (gen|stPending) to (gen|outcome) — whoever
// wins owns the cleanup (table unregister, result send). Packing
// generation and state into one word closes the ABA hole a separate
// gen-check-then-CAS would leave: a stale timer-wheel entry holding a
// recycled waiter's pointer can never complete the waiter's next life,
// because the next life carries a new generation in the same word the
// CAS covers.
const (
	stPending uint32 = iota
	stDelivered
	stTimedOut
	stCancelled
	stClosed
)

// wresult is what a completed exchange hands back on the waiter
// channel: a pooled response buffer or an error, never both.
type wresult struct {
	buf []byte
	err error
}

// waiter is one in-flight exchange's rendezvous point. Waiters are
// pooled and reused across generations; ch is buffered (capacity 1) so
// the completing side never blocks, and is drained exactly once per
// generation — either by Exchange or by the cancel path's discard.
type waiter struct {
	ch chan wresult

	// sg packs generation (high 32 bits) and state (low 32 bits).
	sg atomic.Uint64

	// Owned by the registering Exchange, written before table
	// insertion; the shard mutex publishes them to completers.
	origID uint16
	wireID uint16
	dest   netip.AddrPort
	sentAt time.Time
	// rttSample marks the 1-in-16 exchanges whose delivery feeds the
	// RTT histogram; the rest skip the clock read.
	rttSample bool
}

func pack(gen, st uint32) uint64 { return uint64(gen)<<32 | uint64(st) }

// nextGen retires the waiter's previous life and arms a new one:
// bump the generation, reset state to pending. Called only by the
// pool-checkout owner, before the waiter is visible to anyone else.
func (w *waiter) nextGen() uint32 {
	gen := uint32(w.sg.Load()>>32) + 1
	w.sg.Store(pack(gen, stPending))
	return gen
}

// complete attempts to move the waiter from (gen, pending) to
// (gen, st). Exactly one completer per generation wins; losers — a
// stale wheel entry, a duplicate datagram, a lost cancel race — get
// false and must walk away.
func (w *waiter) complete(gen, st uint32) bool {
	return w.sg.CompareAndSwap(pack(gen, stPending), pack(gen, st))
}
