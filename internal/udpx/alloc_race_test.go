//go:build race

package udpx

// raceEnabled mirrors the build's -race flag; see alloc_norace_test.go.
const raceEnabled = true
