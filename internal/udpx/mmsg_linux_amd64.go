//go:build linux && amd64

package udpx

// The stdlib syscall number table for linux/amd64 was frozen before
// sendmmsg(2) landed (recvmmsg made the cut, sendmmsg did not), so
// both numbers are spelled out here.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
