// Package udpx is the high-throughput batched UDP transport for the
// real-network scan path — the socket half of ROADMAP item 2 (the
// streaming half shipped with measure.ScanStream). It is the way ZDNS
// and massdns reach ~100k+ QPS on commodity hardware: instead of the
// dial-per-exchange pattern of authserver.UDPTransport (a fresh
// connected socket, a connect/send/recv/close syscall quartet, and a
// 4 KiB buffer allocation per query), a BatchTransport multiplexes
// every in-flight query over a small fixed pool of long-lived,
// unconnected sockets:
//
//   - Callers enqueue (server, query) onto a bounded per-socket send
//     ring; one sender goroutine per socket drains the ring in batches —
//     a single sendmmsg(2) per batch on Linux, a WriteToUDPAddrPort
//     loop everywhere else (socket.go, mmsg_linux.go).
//   - One receiver goroutine per socket drains datagrams in batches
//     (recvmmsg(2) / ReadFromUDPAddrPort) into pooled fixed-size
//     buffers and demuxes each to its waiting exchange through a
//     sharded table keyed (server address, transaction ID).
//   - Transaction IDs on the wire are the transport's, not the
//     caller's: each exchange draws a per-destination ID from a
//     collision-avoiding allocator (the demux table itself is the
//     occupancy oracle), so concurrent queries to one server never
//     share an ID no matter what IDs the callers chose. The response's
//     ID is patched back to the caller's before delivery, so the
//     resolver's validation, duplicate accounting, and discard
//     machinery see exactly what the dial transport would show them.
//   - Per-query deadlines ride a coarse timer wheel (wheel.go) instead
//     of per-socket read deadlines, so one blackholed server burns only
//     its own queries and never stalls a shared socket.
//   - Response buffers are pooled (buffers.go) under the same
//     borrow/own discipline as the dnswire.Pool codec arenas: the
//     resolver decodes a response onto its arena — which copies every
//     retained byte — and then returns the wire buffer through
//     ReleaseResponse (resolver.ResponseReleaser), keeping the
//     steady-state exchange hot path allocation-free.
//
// Late, duplicate, and stray datagrams whose (address, ID) key no
// longer has a waiter are counted (udpx_demux_misses_total) and
// dropped, which is precisely what the dial transport's closed sockets
// did to them; datagrams that do reach a waiter but fail validation are
// the resolver's business and flow through its existing classify /
// accepted-ring / discard-budget machinery unchanged. See DESIGN.md
// § 15 for the full lifecycle and the fallback matrix.
package udpx

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"govdns/internal/obs"
)

// Transport errors.
var (
	// ErrTimeout indicates the per-query deadline fired from the timer
	// wheel before a response was demuxed to the exchange.
	ErrTimeout = errors.New("udpx: query timed out")
	// ErrQIDExhausted indicates more than 65536 concurrent in-flight
	// queries to a single server address: the 16-bit transaction ID
	// space has no free ID to allocate. This fails loudly — silently
	// reusing a live ID would misdeliver answers.
	ErrQIDExhausted = errors.New("udpx: transaction ID space exhausted (65536 queries in flight to one server)")
	// ErrClosed indicates an Exchange on a transport whose Close has
	// begun; in-flight exchanges are failed with it too.
	ErrClosed = errors.New("udpx: transport closed")
	// ErrNoSocket indicates no socket of the destination's address
	// family could be bound at construction time.
	ErrNoSocket = errors.New("udpx: no socket for address family")
)

// Defaults for Config fields left zero.
const (
	// DefaultSockets caps the shared socket pool size per address
	// family; the default is min(DefaultSockets, max(2, NumCPU)).
	// Receive-side fan-in is the scaling limit, not fd count; a few
	// sockets spread kernel buffer pressure without fragmenting
	// batches, and sockets beyond the core count only add scheduling
	// churn.
	DefaultSockets = 4
	// DefaultRing bounds queued sends per socket; enqueue blocks (with
	// the caller's context and deadline still armed) when full.
	DefaultRing = 1024
	// DefaultBatch is the maximum datagrams moved per sendmmsg/recvmmsg
	// call (and the drain bound of the portable loops).
	DefaultBatch = 32
	// DefaultTimeout is the transport's own per-query deadline when the
	// caller's context carries none. The resolver's per-attempt context
	// deadline is normally far tighter; this is the wheel's backstop.
	DefaultTimeout = 2 * time.Second
	// DefaultWheelTick is the timer wheel granularity: a deadline fires
	// within one tick past its nominal instant.
	DefaultWheelTick = 5 * time.Millisecond
	// defaultWheelSlots is the wheel circumference (power of two);
	// deadlines beyond tick*slots simply survive extra passes.
	defaultWheelSlots = 512
	// maxInflightPerDest is the 16-bit transaction ID space: the hard
	// bound on concurrent queries to one server address.
	maxInflightPerDest = 1 << 16
)

// Config parameterizes a BatchTransport. The zero value gives the
// defaults above, port 53, and the Linux batched-syscall path when
// available.
type Config struct {
	// Sockets is the pool size per address family (default
	// DefaultSockets).
	Sockets int
	// Ring is the bounded send-ring depth per socket (default
	// DefaultRing).
	Ring int
	// Batch is the max datagrams per batched syscall (default
	// DefaultBatch).
	Batch int
	// Timeout is the per-query deadline enforced by the timer wheel
	// when the context has none (default DefaultTimeout). A context
	// deadline tighter than Timeout wins.
	Timeout time.Duration
	// WheelTick is the timer wheel granularity (default
	// DefaultWheelTick).
	WheelTick time.Duration
	// WheelSlots is the wheel circumference, rounded up to a power of
	// two (default 512). Steady-state arming is allocation-free once
	// every slot's entry array has grown to the workload's high-water
	// mark, which takes one full revolution (WheelTick × WheelSlots);
	// tests shrink the wheel to reach steady state quickly.
	WheelSlots int
	// Portable forces the portable per-datagram send/receive loops even
	// where batched syscalls are available, for differential testing of
	// the two I/O paths.
	Portable bool

	// Port is the destination UDP port when no override applies
	// (default 53).
	Port int
	// PortOverride maps a server IP to the UDP port serving it
	// (same semantics as authserver.UDPTransport).
	PortOverride map[netip.Addr]int
	// AddrOverride maps a server IP to the socket actually serving it,
	// taking precedence over PortOverride.
	AddrOverride map[netip.Addr]netip.AddrPort
}

// tableShards is the demux table shard count; (dest, id) keys spread
// across shards so 128-way scanners do not serialize on one lock.
const tableShards = 64

// wref is a demux table value: the waiter plus the generation it was
// registered under, so a stale pointer to a recycled waiter can never
// complete the wrong exchange.
type wref struct {
	w   *waiter
	gen uint32
}

type tableKey struct {
	dest netip.AddrPort
	id   uint16
}

type shard struct {
	mu sync.Mutex
	m  map[tableKey]wref
}

// destState is the per-destination transaction ID allocator: a probe
// cursor plus the in-flight count that makes exhaustion loud. The demux
// table itself is the occupancy check — an ID is free exactly when
// (dest, id) has no table entry — so the allocator needs no 8 KiB
// bitmap per destination.
type destState struct {
	mu       sync.Mutex
	cursor   uint16
	inflight int
}

// metrics is the udpx_* instrument set on the shared registry.
type metrics struct {
	exchanges  *obs.Counter // udpx_exchanges_total
	sendDgrams *obs.Counter // udpx_send_datagrams_total
	sendBatch  *obs.Counter // udpx_send_batches_total
	recvDgrams *obs.Counter // udpx_recv_datagrams_total
	recvBatch  *obs.Counter // udpx_recv_batches_total
	sysSaved   *obs.Counter // udpx_syscalls_saved_total
	misses     *obs.Counter // udpx_demux_misses_total
	malformed  *obs.Counter // udpx_malformed_total
	timeouts   *obs.Counter // udpx_wheel_timeouts_total
	cancels    *obs.Counter // udpx_cancels_total
	exhausted  *obs.Counter // udpx_qid_exhausted_total
	rtt        *obs.Histogram

	inflight     *obs.Gauge // udpx_qid_inflight
	inflightHigh *obs.Gauge // udpx_qid_inflight_highwater
	ringHigh     *obs.Gauge // udpx_ring_highwater
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		exchanges:    r.Counter("udpx_exchanges_total"),
		sendDgrams:   r.Counter("udpx_send_datagrams_total"),
		sendBatch:    r.Counter("udpx_send_batches_total"),
		recvDgrams:   r.Counter("udpx_recv_datagrams_total"),
		recvBatch:    r.Counter("udpx_recv_batches_total"),
		sysSaved:     r.Counter("udpx_syscalls_saved_total"),
		misses:       r.Counter("udpx_demux_misses_total"),
		malformed:    r.Counter("udpx_malformed_total"),
		timeouts:     r.Counter("udpx_wheel_timeouts_total"),
		cancels:      r.Counter("udpx_cancels_total"),
		exhausted:    r.Counter("udpx_qid_exhausted_total"),
		rtt:          r.Histogram("udpx_exchange_rtt"),
		inflight:     r.Gauge("udpx_qid_inflight"),
		inflightHigh: r.Gauge("udpx_qid_inflight_highwater"),
		ringHigh:     r.Gauge("udpx_ring_highwater"),
	}
}

// BatchTransport is the shared-socket batched UDP transport. It
// implements resolver.Transport (and resolver.ResponseReleaser); one
// instance serves any number of concurrent exchanges until Close.
type BatchTransport struct {
	cfg    Config
	socks  []*sock // ipv4 pool
	socks6 []*sock // ipv6 pool (may be empty where v6 cannot bind)

	table [tableShards]shard

	destMu sync.RWMutex
	dests  map[netip.AddrPort]*destState

	wheel *wheel
	wpool sync.Pool // *waiter

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	// rttTick drives the 1-in-16 RTT sampling in Exchange/deliver.
	rttTick atomic.Uint64

	metricsOnce sync.Once
	m           *metrics
}

// New builds and starts a BatchTransport: binds the socket pool, and
// launches the per-socket sender/receiver goroutines and the timer
// wheel. Callers must Close it to release the sockets.
func New(cfg Config) (*BatchTransport, error) {
	if cfg.Sockets <= 0 {
		// The pool exists to spread receive fan-in across cores and
		// kernel buffers; sockets beyond the core count only add loop
		// goroutines to schedule and fragment send batches.
		cfg.Sockets = runtime.NumCPU()
		if cfg.Sockets < 2 {
			cfg.Sockets = 2
		}
		if cfg.Sockets > DefaultSockets {
			cfg.Sockets = DefaultSockets
		}
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	if cfg.Batch <= 0 {
		cfg.Batch = DefaultBatch
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.WheelTick <= 0 {
		cfg.WheelTick = DefaultWheelTick
	}
	if cfg.WheelSlots <= 0 {
		cfg.WheelSlots = defaultWheelSlots
	}
	for cfg.WheelSlots&(cfg.WheelSlots-1) != 0 {
		cfg.WheelSlots++
	}
	if cfg.Port <= 0 {
		cfg.Port = 53
	}
	t := &BatchTransport{
		cfg:   cfg,
		dests: make(map[netip.AddrPort]*destState),
		done:  make(chan struct{}),
	}
	for i := 0; i < tableShards; i++ {
		t.table[i].m = make(map[tableKey]wref)
	}
	t.wheel = newWheel(cfg.WheelTick, cfg.WheelSlots, t)
	for i := 0; i < cfg.Sockets; i++ {
		c, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4zero})
		if err != nil {
			t.closeSocks()
			return nil, fmt.Errorf("udpx: bind udp4 socket %d: %w", i, err)
		}
		s, err := newSock(t, c, false)
		if err != nil {
			_ = c.Close()
			t.closeSocks()
			return nil, err
		}
		t.socks = append(t.socks, s)
	}
	// IPv6 sockets are best-effort: a v4-only host still gets a working
	// transport, and v6 destinations then fail with ErrNoSocket.
	for i := 0; i < cfg.Sockets; i++ {
		c, err := net.ListenUDP("udp6", &net.UDPAddr{IP: net.IPv6zero})
		if err != nil {
			break
		}
		s, err := newSock(t, c, true)
		if err != nil {
			_ = c.Close()
			break
		}
		t.socks6 = append(t.socks6, s)
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.wheel.run(t.done)
	}()
	for _, s := range append(append([]*sock(nil), t.socks...), t.socks6...) {
		t.wg.Add(2)
		go func(s *sock) { defer t.wg.Done(); s.sendLoop() }(s)
		go func(s *sock) { defer t.wg.Done(); s.recvLoop() }(s)
	}
	return t, nil
}

func (t *BatchTransport) closeSocks() {
	for _, s := range t.socks {
		_ = s.conn.Close()
	}
	for _, s := range t.socks6 {
		_ = s.conn.Close()
	}
}

// AttachRegistry binds the transport's udpx_* instruments onto r. Call
// it before the first Exchange; afterwards a private registry has
// already won and the call is a no-op (the first-wins contract shared
// with chaos.Transport and dnswire.Pool).
func (t *BatchTransport) AttachRegistry(r *obs.Registry) {
	t.metricsOnce.Do(func() { t.m = newMetrics(r) })
}

func (t *BatchTransport) metrics() *metrics {
	t.metricsOnce.Do(func() { t.m = newMetrics(obs.NewRegistry()) })
	return t.m
}

// target resolves the socket address actually serving server, per the
// override maps (tests and benches serve simulated-topology IPs from
// loopback high ports, exactly like authserver.UDPTransport).
func (t *BatchTransport) target(server netip.Addr) netip.AddrPort {
	if ap, ok := t.cfg.AddrOverride[server]; ok {
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	}
	port := t.cfg.Port
	if p, ok := t.cfg.PortOverride[server]; ok {
		port = p
	}
	return netip.AddrPortFrom(server.Unmap(), uint16(port))
}

// sockFor picks the pool socket for dest: family first, then a
// destination hash, so every exchange with one server rides one socket
// and its responses demux on the socket that sent them.
func (t *BatchTransport) sockFor(dest netip.AddrPort) *sock {
	pool := t.socks
	if dest.Addr().Is6() {
		pool = t.socks6
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[destHash(dest)%uint32(len(pool))]
}

// destHash is an FNV-1a over the destination address and port.
func destHash(dest netip.AddrPort) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	a16 := dest.Addr().As16()
	for _, b := range a16 {
		h = (h ^ uint32(b)) * prime32
	}
	p := dest.Port()
	h = (h ^ uint32(p&0xff)) * prime32
	h = (h ^ uint32(p>>8)) * prime32
	return h
}

func (t *BatchTransport) shardOf(dest netip.AddrPort, id uint16) *shard {
	h := destHash(dest) ^ (uint32(id) * 0x9e3779b1)
	return &t.table[h%tableShards]
}

// dest returns the per-destination allocator state, creating it on
// first contact (the only allocation a destination ever costs).
func (t *BatchTransport) dest(dest netip.AddrPort) *destState {
	t.destMu.RLock()
	ds := t.dests[dest]
	t.destMu.RUnlock()
	if ds != nil {
		return ds
	}
	t.destMu.Lock()
	defer t.destMu.Unlock()
	if ds := t.dests[dest]; ds != nil {
		return ds
	}
	ds = &destState{}
	t.dests[dest] = ds
	return ds
}

// reserve allocates a wire transaction ID for dest and registers w in
// the demux table under it. The table is the collision oracle: an ID is
// free exactly when its key has no entry, so two concurrent queries to
// one server can never share an ID. Fails loudly with ErrQIDExhausted
// at 65536 in flight.
func (t *BatchTransport) reserve(dest netip.AddrPort, w *waiter, gen uint32) (uint16, error) {
	m := t.metrics()
	ds := t.dest(dest)
	ds.mu.Lock()
	if ds.inflight >= maxInflightPerDest {
		ds.mu.Unlock()
		m.exhausted.Inc()
		return 0, fmt.Errorf("%w: %s", ErrQIDExhausted, dest)
	}
	for tries := 0; tries < maxInflightPerDest; tries++ {
		id := ds.cursor
		ds.cursor++
		sh := t.shardOf(dest, id)
		k := tableKey{dest: dest, id: id}
		sh.mu.Lock()
		if _, busy := sh.m[k]; !busy {
			w.dest = dest
			w.wireID = id
			sh.m[k] = wref{w: w, gen: gen}
			sh.mu.Unlock()
			ds.inflight++
			n := ds.inflight
			ds.mu.Unlock()
			t.noteInflight(n)
			return id, nil
		}
		sh.mu.Unlock()
	}
	// Unreachable while inflight < 65536, but never loop forever on a
	// bookkeeping bug.
	ds.mu.Unlock()
	m.exhausted.Inc()
	return 0, fmt.Errorf("%w: %s", ErrQIDExhausted, dest)
}

// noteInflight maintains the occupancy gauge and its high-water mark.
// The high-water update is load-then-set and may lose a race to a
// concurrent peak; it is a telemetry watermark, not an invariant.
func (t *BatchTransport) noteInflight(n int) {
	m := t.metrics()
	m.inflight.Add(1)
	if v := m.inflight.Load(); v > m.inflightHigh.Load() {
		m.inflightHigh.Set(v)
	}
	_ = n
}

// unregister removes w's table entry and returns its ID to the
// per-destination space. Called exactly once per exchange, by whichever
// completer won the state CAS.
func (t *BatchTransport) unregister(w *waiter, gen uint32) {
	k := tableKey{dest: w.dest, id: w.wireID}
	sh := t.shardOf(w.dest, w.wireID)
	sh.mu.Lock()
	if ref, ok := sh.m[k]; ok && ref.w == w && ref.gen == gen {
		delete(sh.m, k)
	}
	sh.mu.Unlock()
	ds := t.dest(w.dest)
	ds.mu.Lock()
	ds.inflight--
	ds.mu.Unlock()
	t.metrics().inflight.Add(-1)
}

// pending reports the number of registered waiters across the demux
// table — zero when no exchange is in flight. Tests assert it returns
// to zero after churn; production code never needs it.
func (t *BatchTransport) pending() int {
	n := 0
	for i := range t.table {
		sh := &t.table[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// getWaiter checks a waiter out of the pool under a fresh generation.
func (t *BatchTransport) getWaiter() (*waiter, uint32) {
	w, _ := t.wpool.Get().(*waiter)
	if w == nil {
		w = &waiter{ch: make(chan wresult, 1)}
	}
	gen := w.nextGen()
	return w, gen
}

func (t *BatchTransport) putWaiter(w *waiter) { t.wpool.Put(w) }

// Exchange implements resolver.Transport: enqueue the query toward its
// socket, wait for the demuxed response (or the wheel deadline, or the
// context). The returned buffer is pooled; callers release it through
// ReleaseResponse once decoded (the resolver's arena decode copies
// every retained byte first).
func (t *BatchTransport) Exchange(ctx context.Context, server netip.Addr, query []byte) ([]byte, error) {
	if len(query) < 12 {
		return nil, fmt.Errorf("udpx: query shorter than a DNS header (%d bytes)", len(query))
	}
	if len(query) > bufSize {
		return nil, fmt.Errorf("udpx: query of %d bytes exceeds %d", len(query), bufSize)
	}
	if t.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := t.metrics()
	dest := t.target(server)
	s := t.sockFor(dest)
	if s == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSocket, dest)
	}

	w, gen := t.getWaiter()
	w.origID = binary.BigEndian.Uint16(query)
	if _, err := t.reserve(dest, w, gen); err != nil {
		t.putWaiter(w)
		return nil, err
	}
	// The registration is live from here on: exactly one completer —
	// receiver, wheel, cancel, or close sweep — wins the state CAS and
	// unregisters. If the transport raced into Close after the
	// registration, the sweep is guaranteed to see the entry (shard
	// mutexes order the sweep against the insert), so the wait below
	// always terminates.
	if t.closed.Load() {
		return nil, t.cancelWait(w, gen, ErrClosed)
	}

	req := getSendReq()
	req.dest = dest
	req.n = copy(req.b[:], query)
	binary.BigEndian.PutUint16(req.b[:], w.wireID)

	w.sentAt = time.Now()
	// RTT observation is sampled: the histogram needs thousands of
	// points per scan, not one per exchange, and the unsampled fast
	// path skips a clock read and the bucket update in deliver.
	w.rttSample = t.rttTick.Add(1)&15 == 0
	deadline := w.sentAt.Add(t.cfg.Timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	t.wheel.add(w, gen, deadline, w.sentAt)

	select {
	case s.ring <- req:
		// Common case: ring has room, no selectgo round.
	default:
		select {
		case s.ring <- req:
		case res := <-w.ch:
			// The wheel (or close sweep) fired while the ring was full;
			// the datagram never went out.
			putSendReq(req)
			t.putWaiter(w)
			return nil, res.err
		case <-ctx.Done():
			putSendReq(req)
			return nil, t.cancelWait(w, gen, ctx.Err())
		}
	}
	if n := int64(len(s.ring)); n > m.ringHigh.Load() {
		m.ringHigh.Set(n)
	}
	m.exchanges.Inc()

	select {
	case res := <-w.ch:
		t.putWaiter(w)
		return res.buf, res.err
	case <-ctx.Done():
		return nil, t.cancelWait(w, gen, ctx.Err())
	}
}

// cancelWait resolves an exchange whose context fired (or that lost the
// race with Close): win the CAS and clean up, or — if a completer beat
// us — drain its result and discard it, exactly as the dial transport
// discards a datagram that lands after the deadline.
func (t *BatchTransport) cancelWait(w *waiter, gen uint32, cause error) error {
	if w.complete(gen, stCancelled) {
		t.unregister(w, gen)
		t.metrics().cancels.Inc()
		t.putWaiter(w)
		return cause
	}
	res := <-w.ch
	if res.buf != nil {
		putBuf(res.buf)
	}
	t.putWaiter(w)
	return cause
}

// deliver routes one received datagram to its waiter. Misses — late
// duplicates of completed exchanges, stray or spoofed datagrams, chaos
// debris — are counted and dropped, the batched equivalent of a closed
// per-exchange socket swallowing them.
func (t *BatchTransport) deliver(buf []byte, src netip.AddrPort) {
	m := t.metrics()
	m.recvDgrams.Inc()
	if len(buf) < 12 {
		m.malformed.Inc()
		putBuf(buf)
		return
	}
	src = netip.AddrPortFrom(src.Addr().Unmap(), src.Port())
	id := binary.BigEndian.Uint16(buf)
	k := tableKey{dest: src, id: id}
	sh := t.shardOf(src, id)
	sh.mu.Lock()
	ref, ok := sh.m[k]
	sh.mu.Unlock()
	if !ok || !ref.w.complete(ref.gen, stDelivered) {
		m.misses.Inc()
		putBuf(buf)
		return
	}
	t.unregister(ref.w, ref.gen)
	if ref.w.rttSample {
		m.rtt.ObserveSince(ref.w.sentAt)
	}
	// Patch the caller's transaction ID back in before the resolver
	// sees the wire; the rewrite is invisible end to end.
	binary.BigEndian.PutUint16(buf, ref.w.origID)
	ref.w.ch <- wresult{buf: buf}
}

// expire is the wheel's completion path: fail the exchange with
// ErrTimeout. Runs on the wheel goroutine; the CAS has already been won
// by the caller.
func (t *BatchTransport) expire(w *waiter, gen uint32) {
	t.unregister(w, gen)
	t.metrics().timeouts.Inc()
	w.ch <- wresult{err: ErrTimeout}
}

// ReleaseResponse returns a buffer handed out by Exchange to the packet
// pool (the resolver calls it right after its arena decode, which
// copies everything it keeps). Implements resolver.ResponseReleaser.
// Foreign buffers — a chaos duplicate's replay copy, a caller's own
// slice — are recognized by capacity and simply left to the GC.
func (t *BatchTransport) ReleaseResponse(buf []byte) { putBuf(buf) }

// Close shuts the transport down: stops the senders and the wheel,
// closes every socket (unblocking the receivers), and fails every
// still-pending exchange with ErrClosed. Idempotent.
func (t *BatchTransport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.done)
	t.closeSocks()
	t.wg.Wait()
	// Sweep the demux table: every remaining waiter gets ErrClosed.
	// Registrations racing Close either saw closed first (and
	// self-cancelled) or inserted before this sweep's shard lock — the
	// mutex makes one of the two orders definite.
	for i := range t.table {
		sh := &t.table[i]
		sh.mu.Lock()
		refs := make([]wref, 0, len(sh.m))
		for _, ref := range sh.m {
			refs = append(refs, ref)
		}
		sh.mu.Unlock()
		for _, ref := range refs {
			if ref.w.complete(ref.gen, stClosed) {
				t.unregister(ref.w, ref.gen)
				ref.w.ch <- wresult{err: ErrClosed}
			}
		}
	}
	return nil
}

// Stats is a snapshot of transport counters, read from the registry
// instruments (shared or private).
type Stats struct {
	// Exchanges counts queries put on the ring; SendBatches and
	// SendDatagrams (resp. Recv*) describe the syscall batching:
	// Datagrams/Batches is the mean batch size, and SyscallsSaved is
	// the datagrams that shared a syscall with a predecessor.
	Exchanges, SendBatches, SendDatagrams, RecvBatches, RecvDatagrams, SyscallsSaved uint64
	// DemuxMisses counts datagrams with no waiting exchange (late,
	// duplicate, stray); Malformed counts sub-header runts.
	DemuxMisses, Malformed uint64
	// WheelTimeouts counts deadlines fired from the timer wheel;
	// Cancels counts context cancellations; QIDExhausted counts
	// reservations refused at 65536 in flight.
	WheelTimeouts, Cancels, QIDExhausted uint64
	// Inflight is the current registered-waiter count;
	// InflightHighwater its observed peak; RingHighwater the deepest
	// observed send-ring backlog.
	Inflight, InflightHighwater, RingHighwater int64
}

// Stats returns the current counter snapshot.
func (t *BatchTransport) Stats() Stats {
	m := t.metrics()
	return Stats{
		Exchanges:         m.exchanges.Load(),
		SendBatches:       m.sendBatch.Load(),
		SendDatagrams:     m.sendDgrams.Load(),
		RecvBatches:       m.recvBatch.Load(),
		RecvDatagrams:     m.recvDgrams.Load(),
		SyscallsSaved:     m.sysSaved.Load(),
		DemuxMisses:       m.misses.Load(),
		Malformed:         m.malformed.Load(),
		WheelTimeouts:     m.timeouts.Load(),
		Cancels:           m.cancels.Load(),
		QIDExhausted:      m.exhausted.Load(),
		Inflight:          m.inflight.Load(),
		InflightHighwater: m.inflightHigh.Load(),
		RingHighwater:     m.ringHigh.Load(),
	}
}
