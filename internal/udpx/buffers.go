package udpx

import (
	"net/netip"
	"sync"
	"unsafe"
)

// bufSize is the datagram buffer size: the de-facto EDNS0 practical
// ceiling, matching the dial transport and UDPServer.
const bufSize = 4096

// packetBuf is the pooled receive-buffer type. Pooling a pointer to a
// fixed-size array (rather than a *[]byte) keeps checkout and return
// allocation-free: the handed-out slice is (*arr)[:n], and return
// recovers the array pointer from the slice's data pointer.
type packetBuf [bufSize]byte

var bufPool = sync.Pool{New: func() any { return new(packetBuf) }}

// getBuf checks a full-capacity buffer out of the packet pool.
func getBuf() []byte {
	arr := bufPool.Get().(*packetBuf)
	return arr[:bufSize]
}

// putBuf returns a buffer obtained from getBuf to the pool. Buffers of
// any other capacity — a chaos replay copy, a caller-owned slice, a
// sub-slice — are recognized by capacity and left to the GC; only
// slices still spanning their original array are reclaimed, so the
// pointer recovery below is sound.
func putBuf(buf []byte) {
	if cap(buf) != bufSize {
		return
	}
	arr := (*packetBuf)(unsafe.Pointer(unsafe.SliceData(buf[:bufSize])))
	bufPool.Put(arr)
}

// sendReq is one queued datagram on a socket's send ring: the
// destination and a private copy of the query bytes (the transport
// patches its own transaction ID into the copy, never the caller's
// slice, which the resolver's arena owns and may reuse on retry).
type sendReq struct {
	dest netip.AddrPort
	n    int
	b    packetBuf
}

var sendReqPool = sync.Pool{New: func() any { return new(sendReq) }}

func getSendReq() *sendReq  { return sendReqPool.Get().(*sendReq) }
func putSendReq(r *sendReq) { sendReqPool.Put(r) }
