package udpx

import (
	"net"
	"net/netip"
)

// PacketConn is the serving-side face of the batched-syscall machinery:
// it wraps a shared *net.UDPConn with whole-batch receive and send
// calls over caller-owned buffers, so a UDP server's read loop moves
// one recvmmsg/sendmmsg round per batch of queries instead of one
// read and one write syscall per datagram. On platforms without the
// batched syscalls (or when portable is set) the same API degrades to
// one datagram per call through the AddrPort read/write paths, which
// keeps callers free of build tags.
//
// A PacketConn's batch state is owned by one goroutine at a time:
// concurrent readers each construct their own PacketConn over the same
// socket (the fd's internal read lock serializes the actual syscalls).
type PacketConn struct {
	conn  *net.UDPConn
	useOS bool
	os    osSock
}

// NewPacketConn wraps conn for batched I/O with the given maximum
// batch size. portable forces the one-datagram-per-syscall fallback.
func NewPacketConn(conn *net.UDPConn, batch int, portable bool) *PacketConn {
	if batch < 1 {
		batch = DefaultBatch
	}
	pc := &PacketConn{conn: conn}
	if osBatchSupported && !portable {
		if err := initOSState(&pc.os, conn, batch); err == nil {
			pc.useOS = true
		}
	}
	return pc
}

// ReadBatch blocks for at least one datagram and fills up to
// min(len(bufs), batch) of them: payload into bufs[i] (caller-owned,
// reused across calls), length into sizes[i], source into addrs[i]. It
// returns the datagram count; a count of zero with a nil error is a
// transient kernel condition and the caller should retry. A datagram
// whose source address cannot be decoded reports an invalid addrs[i]
// for the caller to skip.
func (pc *PacketConn) ReadBatch(bufs [][]byte, sizes []int, addrs []netip.AddrPort) (int, error) {
	if pc.useOS {
		return pc.readBatchOS(bufs, sizes, addrs)
	}
	n, src, err := pc.conn.ReadFromUDPAddrPort(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	addrs[0] = src
	return 1, nil
}

// WriteBatch sends bufs[i] to addrs[i], coalescing into as few
// sendmmsg calls as the kernel allows. Send failures drop the unsent
// tail — the same semantics as datagram loss, which every UDP caller
// already tolerates.
func (pc *PacketConn) WriteBatch(bufs [][]byte, addrs []netip.AddrPort) {
	if pc.useOS {
		pc.writeBatchOS(bufs, addrs)
		return
	}
	for i := range bufs {
		_, _ = pc.conn.WriteToUDPAddrPort(bufs[i], addrs[i])
	}
}
