package udpx

import (
	"errors"
	"net"
	"runtime"
)

// sock is one pooled socket: the connection, its bounded send ring, its
// batch scratch, and the platform batched-I/O state. Each sock owns two
// goroutines — sendLoop drains the ring, recvLoop drains the wire — for
// the transport's lifetime.
type sock struct {
	t    *BatchTransport
	conn *net.UDPConn
	ring chan *sendReq
	v6   bool

	// batch is sendLoop's drain scratch, capacity cfg.Batch.
	batch []*sendReq

	// os holds the platform batched-syscall state (mmsg_linux.go);
	// empty on platforms without it (mmsg_stub.go).
	os osSock

	// useOS gates the batched-syscall path: platform support minus the
	// Portable override, resolved once at construction.
	useOS bool
}

func newSock(t *BatchTransport, conn *net.UDPConn, v6 bool) (*sock, error) {
	// A shared socket absorbs whole batches of responses between
	// scheduler slots; a deep kernel buffer is what keeps burst loss
	// out of the loopback differential. Best-effort (capped by
	// net.core.rmem_max unless privileged).
	_ = conn.SetReadBuffer(1 << 20)
	_ = conn.SetWriteBuffer(1 << 20)
	s := &sock{
		t:     t,
		conn:  conn,
		ring:  make(chan *sendReq, t.cfg.Ring),
		v6:    v6,
		batch: make([]*sendReq, 0, t.cfg.Batch),
	}
	s.useOS = osBatchSupported && !t.cfg.Portable
	if s.useOS {
		if err := initOS(s); err != nil {
			// Raw-conn access failed; run portable rather than refuse.
			s.useOS = false
		}
	}
	return s, nil
}

// sendLoop drains the ring: block for the first request, opportunistic
// drain up to the batch bound, one sendmmsg (or a WriteToUDPAddrPort
// loop) for the lot. Send errors are swallowed — an unreachable
// destination's query times out on the wheel exactly as a datagram
// lost in the network would, which is the semantics the resolver's
// retry loop is built for.
func (s *sock) sendLoop() {
	m := s.t.metrics()
	for {
		var first *sendReq
		select {
		case <-s.t.done:
			return
		case first = <-s.ring:
		}
		s.batch = append(s.batch[:0], first)
		// One yield between the blocking receive and the drain: on a
		// loaded scheduler the enqueuing workers run and the ring fills,
		// so the drain below collects a real batch instead of the lone
		// request that woke us (the hot sendLoop otherwise wins the race
		// to the ring every time and degrades to one datagram per
		// syscall). Under light load the yield is a no-op returning
		// immediately, and latency is unaffected.
		runtime.Gosched()
	fill:
		for len(s.batch) < cap(s.batch) {
			select {
			case r := <-s.ring:
				s.batch = append(s.batch, r)
			default:
				break fill
			}
		}
		n := len(s.batch)
		syscalls := n
		if s.useOS && n > 1 {
			syscalls = s.sendBatchOS(s.batch)
		} else {
			for _, r := range s.batch {
				_, _ = s.conn.WriteToUDPAddrPort(r.b[:r.n], r.dest)
			}
		}
		for i, r := range s.batch {
			putSendReq(r)
			s.batch[i] = nil
		}
		m.sendBatch.Inc()
		m.sendDgrams.Add(uint64(n))
		if n > syscalls {
			m.sysSaved.Add(uint64(n - syscalls))
		}
	}
}

// recvLoop drains the socket until it is closed: recvmmsg batches on
// the OS path, one ReadFromUDPAddrPort per datagram on the portable
// path, each datagram demuxed through deliver in a pooled buffer.
func (s *sock) recvLoop() {
	m := s.t.metrics()
	for {
		if s.useOS {
			if !s.recvBatchOS() {
				return
			}
			continue
		}
		buf := getBuf()
		n, src, err := s.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			putBuf(buf)
			if s.t.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient (e.g. a connected-socket ICMP bounce cannot
			// happen on an unconnected socket, but be safe): keep
			// reading.
			continue
		}
		m.recvBatch.Inc()
		s.t.deliver(buf[:n], src)
	}
}
