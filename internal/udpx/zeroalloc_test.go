package udpx

import (
	"context"
	"net/netip"
	"testing"
	"time"
)

// TestBatchExchangeZeroAlloc is the steady-state allocation gate for
// the batch exchange hot path: once the pools (waiters, send requests,
// receive buffers) and the wheel's slot arrays have warmed to the
// workload's high-water marks, an Exchange + ReleaseResponse round
// trip must not allocate. AllocsPerRun counts process-wide mallocs, so
// the gate only holds because every background party — the sender and
// receiver loops, the wheel sweep, the echo responder — is itself
// allocation-free on its steady path.
func TestBatchExchangeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	echo := startUDP(t, echoLoop)
	tr := newTest(t, Config{
		AddrOverride: map[netip.Addr]netip.AddrPort{srvIP: echo},
		// A small wheel completes a full revolution quickly, so the
		// warmup below reaches the slot arrays' steady-state capacity
		// instead of needing the default 2.5 s circumference.
		WheelTick:  5 * time.Millisecond,
		WheelSlots: 8,
		Timeout:    250 * time.Millisecond,
	})
	ctx := context.Background()
	q := testQuery(7, 7)
	exchange := func() {
		resp, err := tr.Exchange(ctx, srvIP, q)
		if err != nil {
			t.Fatalf("exchange: %v", err)
		}
		tr.ReleaseResponse(resp)
	}
	// Warm up past several wheel revolutions (8 slots × 5 ms = 40 ms)
	// so every slot array has seen its steady-state load.
	warmDeadline := time.Now().Add(300 * time.Millisecond)
	for i := 0; i < 20000 && time.Now().Before(warmDeadline); i++ {
		exchange()
	}
	if avg := testing.AllocsPerRun(200, exchange); avg != 0 {
		t.Fatalf("batch exchange steady state allocates %.2f allocs/op, want 0", avg)
	}
}
