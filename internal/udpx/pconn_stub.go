//go:build !linux || (!amd64 && !arm64)

package udpx

import (
	"errors"
	"net"
	"net/netip"
)

// initOSState has no batched-syscall path to build here; PacketConn
// callers fall through to the portable one-datagram-per-call paths.
func initOSState(*osSock, *net.UDPConn, int) error {
	return errors.New("udpx: batched syscalls unsupported on this platform")
}

func (pc *PacketConn) readBatchOS([][]byte, []int, []netip.AddrPort) (int, error) {
	return 0, nil
}

func (pc *PacketConn) writeBatchOS([][]byte, []netip.AddrPort) {}
