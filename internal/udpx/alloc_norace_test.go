//go:build !race

package udpx

// raceEnabled mirrors the build's -race flag so allocation gates can
// skip themselves: the race runtime instruments allocations and makes
// testing.AllocsPerRun meaningless.
const raceEnabled = false
