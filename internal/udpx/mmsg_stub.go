//go:build !linux || (!amd64 && !arm64)

// Fallback for platforms without the batched-syscall path: the
// transport still batches logically (ring drain, per-socket loops,
// shared sockets, timer wheel) but moves one datagram per syscall via
// the AddrPort read/write APIs. See DESIGN.md § 15 for the matrix.
package udpx

const osBatchSupported = false

type osSock struct{}

func initOS(*sock) error { return nil }

func (s *sock) sendBatchOS(reqs []*sendReq) int { return len(reqs) }

func (s *sock) recvBatchOS() bool { return false }
