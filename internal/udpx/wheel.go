package udpx

import (
	"sync"
	"time"
)

// wheel is the coarse timer wheel that enforces per-query deadlines.
// The dial transport leans on SetReadDeadline, which is per-socket —
// useless once hundreds of exchanges share one socket, where the
// slowest query would dictate everyone's deadline. The wheel gives
// every exchange its own deadline at O(1) arm cost and zero per-query
// timer allocations: a registration is one append into the slot its
// deadline hashes to, and one goroutine sweeps slots at tick
// granularity. A deadline therefore fires up to one tick late — a
// rounding the scan path is insensitive to (resolver retry timeouts are
// tens of ticks) — in exchange for never touching the socket's state,
// so one blackholed server burns only its own queries.
//
// Entries carry the waiter's generation; completion races resolve
// through the waiter's packed gen+state CAS (see waiter.go), so a
// stale entry for a delivered — even recycled — waiter is skipped, not
// mis-expired. Delivered waiters' entries are removed lazily at sweep.
type wheel struct {
	tickDur time.Duration
	mask    int64
	slots   []wslot
	start   time.Time
	t       *BatchTransport

	// expired is the sweep goroutine's private scratch for entries to
	// fail outside the slot lock.
	expired []wentry
}

type wentry struct {
	w    *waiter
	gen  uint32
	tick int64 // absolute tick index the deadline rounds up to
}

type wslot struct {
	mu      sync.Mutex
	entries []wentry
}

// newWheel builds a wheel with the given tick and power-of-two slot
// count. It does not start sweeping until run.
func newWheel(tick time.Duration, slots int, t *BatchTransport) *wheel {
	if slots&(slots-1) != 0 {
		panic("udpx: wheel slots must be a power of two")
	}
	return &wheel{
		tickDur: tick,
		mask:    int64(slots - 1),
		slots:   make([]wslot, slots),
		start:   time.Now(),
		t:       t,
	}
}

// ticks converts an absolute instant to the wheel's tick index,
// rounding up so a deadline never fires early.
func (wh *wheel) ticks(at time.Time) int64 {
	d := at.Sub(wh.start)
	n := int64(d / wh.tickDur)
	if d%wh.tickDur != 0 {
		n++
	}
	return n
}

// add arms w's deadline: append to the slot its tick lands on. now is
// the caller's already-taken timestamp (the exchange's send instant) —
// arming is on the per-query hot path and must not pay a second clock
// read for the never-early clamp. Safe for concurrent use; O(1)
// amortized and allocation-free once the slot's backing array has
// grown to the workload's high-water mark.
func (wh *wheel) add(w *waiter, gen uint32, deadline, now time.Time) {
	tick := wh.ticks(deadline)
	if cur := wh.ticks(now); tick <= cur {
		tick = cur + 1
	}
	sl := &wh.slots[tick&wh.mask]
	sl.mu.Lock()
	sl.entries = append(sl.entries, wentry{w: w, gen: gen, tick: tick})
	sl.mu.Unlock()
}

// run sweeps the wheel until done closes. Each elapsed tick visits one
// slot; entries at or past their tick are raced for completion (the
// CAS loser walks away — the exchange was already delivered, cancelled,
// or closed) and the winners are failed with ErrTimeout outside the
// slot lock. Entries whose tick is still in the future (a full wheel
// revolution away) survive in place.
func (wh *wheel) run(done <-chan struct{}) {
	tk := time.NewTicker(wh.tickDur)
	defer tk.Stop()
	cur := wh.ticks(time.Now())
	for {
		select {
		case <-done:
			return
		case now := <-tk.C:
			target := wh.ticks(now)
			for cur < target {
				cur++
				wh.sweep(cur)
			}
		}
	}
}

// sweep processes one slot at tick cur: partition its entries into
// expired (claimed via CAS) and survivors, then fail the expired
// outside the lock. The survivor compaction reuses the backing array;
// the expired list reuses the wheel's scratch.
func (wh *wheel) sweep(cur int64) {
	sl := &wh.slots[cur&wh.mask]
	wh.expired = wh.expired[:0]
	sl.mu.Lock()
	kept := sl.entries[:0]
	for _, e := range sl.entries {
		if e.tick > cur {
			kept = append(kept, e)
			continue
		}
		if e.w.complete(e.gen, stTimedOut) {
			wh.expired = append(wh.expired, e)
		}
		// CAS losers are simply dropped: their exchange completed
		// through another path and the entry is stale.
	}
	// Zero the tail so dropped entries do not pin waiters against GC.
	for i := len(kept); i < len(sl.entries); i++ {
		sl.entries[i] = wentry{}
	}
	sl.entries = kept
	sl.mu.Unlock()
	for _, e := range wh.expired {
		wh.t.expire(e.w, e.gen)
	}
}
