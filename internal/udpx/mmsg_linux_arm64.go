//go:build linux && arm64

package udpx

const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
