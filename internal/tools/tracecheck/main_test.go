package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// check parses src as a file and returns tracecheck's findings.
func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", "package p\n"+src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return checkFile(fset, file)
}

// The accepted shapes are the repo's actual idioms, lifted from
// resolver/client.go, resolver/iterate.go, and measure/scanner.go; the
// rejected shapes are the regressions the lint exists to catch.
func TestAcceptsRepoIdioms(t *testing.T) {
	cases := map[string]string{
		"defer func-lit with named return": `
func f(rec *R) (err error) {
	if rec != nil {
		span := rec.StartSpan(1, "x")
		defer func() { rec.EndSpan(span, err) }()
	}
	return work()
}`,
		"guarded end before every return": `
func f(rec *R) error {
	fspan := rec.StartSpan(1, "x")
	v, err := work()
	if rec != nil {
		rec.Annotate(fspan, v)
		rec.EndSpan(fspan, err)
	}
	if err != nil {
		return err
	}
	return nil
}`,
		"loop span ended on both arms": `
func f(rec *R) error {
	for i := 0; i < 3; i++ {
		xspan := rec.StartSpan(1, "x")
		err := work()
		if err != nil {
			rec.EndSpan(xspan, err)
			if fatal(err) {
				return err
			}
			continue
		}
		rec.EndSpan(xspan, nil)
	}
	return nil
}`,
		"early-exit arm ends, then fallthrough ends": `
func f(rec *R) error {
	aspan := rec.StartSpan(1, "x")
	if bad() {
		rec.EndSpan(aspan, errBad)
		return errBad
	}
	rec.EndSpan(aspan, nil)
	return nil
}`,
		"span inside closure region": `
func f(rec *R) {
	fanEach(3, func(i int) {
		cspan := rec.StartSpan(1, "x")
		work()
		rec.EndSpan(cspan, nil)
	})
}`,
		"blank and unrelated assignments ignored": `
func f(rec *R) error {
	_ = rec.StartSpan(1, "x")
	v := other.Thing()
	return use(v)
}`,
	}
	for name, src := range cases {
		if got := check(t, src); len(got) != 0 {
			t.Errorf("%s: false positives: %v", name, got)
		}
	}
}

func TestCatchesLeaks(t *testing.T) {
	cases := map[string]struct {
		src  string
		want string // substring of the expected finding
	}{
		"early return between start and end": {`
func f(rec *R) error {
	span := rec.StartSpan(1, "x")
	if bad() {
		return errBad
	}
	rec.EndSpan(span, nil)
	return nil
}`, "return"},
		"loop continue skips the end": {`
func f(rec *R) {
	for i := 0; i < 3; i++ {
		span := rec.StartSpan(1, "x")
		if skip() {
			continue
		}
		rec.EndSpan(span, nil)
	}
}`, "continue"},
		"loop break skips the end": {`
func f(rec *R) {
	for {
		span := rec.StartSpan(1, "x")
		if done() {
			break
		}
		rec.EndSpan(span, nil)
	}
}`, "break"},
		"only one if-arm ends before return": {`
func f(rec *R) error {
	span := rec.StartSpan(1, "x")
	if ok() {
		rec.EndSpan(span, nil)
	} else {
		log()
	}
	return nil
}`, "return"},
		"end only inside nested loop that may not run": {`
func f(rec *R, items []int) error {
	span := rec.StartSpan(1, "x")
	for range items {
		rec.EndSpan(span, nil)
	}
	return nil
}`, "return"},
		"deferred closure ends a different span": {`
func f(rec *R) error {
	span := rec.StartSpan(1, "x")
	defer func() { rec.EndSpan(other, nil) }()
	return nil
}`, "return"},
	}
	for name, tc := range cases {
		got := check(t, tc.src)
		if len(got) == 0 {
			t.Errorf("%s: leak not reported", name)
			continue
		}
		if !strings.Contains(got[0], tc.want) {
			t.Errorf("%s: finding %q does not mention %q", name, got[0], tc.want)
		}
	}
}

// A return inside a closure defined after StartSpan exits the closure,
// not the function holding the span — it must not be flagged, and the
// span ended after the closure is fine.
func TestClosureReturnIsNotAnExit(t *testing.T) {
	src := `
func f(rec *R) {
	span := rec.StartSpan(1, "x")
	visit(func(n int) bool {
		if n > 3 {
			return false
		}
		return true
	})
	rec.EndSpan(span, nil)
}`
	if got := check(t, src); len(got) != 0 {
		t.Errorf("closure return flagged: %v", got)
	}
}
