// Command tracecheck is the repo's custom vet pass for resolution
// tracing: every span opened with trace.Recorder.StartSpan in the
// packages it is pointed at must be closed on every path out of the
// region that opened it — otherwise the flight recorder exports trees
// with spans stuck "open" and every duration downstream of them is a
// lie. `make lint` runs it over internal/resolver and internal/measure,
// the two packages that start spans.
//
//	go run ./internal/tools/tracecheck ./internal/resolver ./internal/measure
//
// The analysis is deliberately small. For each assignment
// `x := rec.StartSpan(...)` (or `x = rec.StartSpan(...)`) it finds the
// enclosing region — the body of the innermost function or loop
// containing the assignment, since a span started inside a loop
// iteration must be closed within that iteration — and walks the
// region's statements structurally:
//
//   - a statement containing `EndSpan(x, ...)` marks the span ended
//     from that point on (an `if rec != nil { rec.EndSpan(x, ...) }`
//     guard counts: when rec is nil the span was never started);
//   - a `defer` whose call — directly or inside a deferred func
//     literal — ends x covers every subsequent exit;
//   - a return, or a break/continue when the region is a loop body,
//     reached while the span may still be open is reported;
//   - an if-arm that ends the span and falls through propagates the
//     ended state; an arm that exits (returns on all its paths) does
//     not leak its state into the fallthrough path.
//
// The walker is optimistic about guard conditions (it does not prove
// `rec != nil` matches the start guard) and does not follow data flow
// through calls; it exists to catch the real-world leak — a new early
// return slipped between StartSpan and EndSpan — not to be a theorem
// prover. Test files are skipped: tests start spans to assert on
// half-open states.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <package-dir>...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	fset := token.NewFileSet()
	var findings []string
	for _, dir := range flag.Args() {
		fs, err := checkDir(fset, dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func checkDir(fset *token.FileSet, dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		findings = append(findings, checkFile(fset, file)...)
	}
	return findings, nil
}

// checkFile reports every StartSpan assignment in file whose span can
// escape its region unended.
func checkFile(fset *token.FileSet, file *ast.File) []string {
	var findings []string
	// Ancestor stack maintained by hand: ast.Inspect signals a pop with
	// a nil node.
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range assign.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isMethodCall(call, "StartSpan") || i >= len(assign.Lhs) {
				continue
			}
			ident, ok := assign.Lhs[i].(*ast.Ident)
			if !ok || ident.Name == "_" {
				continue
			}
			region, isLoop := enclosingRegion(stack)
			if region == nil {
				continue
			}
			c := &checker{varName: ident.Name, assignPos: assign.Pos()}
			c.walk(region.List, false, isLoop)
			for _, leak := range c.leaks {
				findings = append(findings, fmt.Sprintf(
					"%s: span %q started at %s may reach this %s unended",
					fset.Position(leak.pos), ident.Name, fset.Position(assign.Pos()), leak.kind))
			}
		}
		return true
	})
	return findings
}

// enclosingRegion walks the ancestor stack (innermost last, ending at
// the AssignStmt) to the body of the nearest function or loop: the
// block a span started inside it must not escape. isLoop reports a
// loop body, where break/continue are exits too.
func enclosingRegion(stack []ast.Node) (*ast.BlockStmt, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			return n.Body, false
		case *ast.FuncLit:
			return n.Body, false
		case *ast.ForStmt:
			return n.Body, true
		case *ast.RangeStmt:
			return n.Body, true
		}
	}
	return nil, false
}

type leak struct {
	pos  token.Pos
	kind string // "return", "break", "continue"
}

// checker walks one region for one span variable. Statements entirely
// before the assignment are skipped; the walk tracks whether the span
// is certainly ended on the current path.
type checker struct {
	varName   string
	assignPos token.Pos
	leaks     []leak
}

// walk processes a statement list. ended is the state at entry;
// branchExits marks a loop-body region where break/continue leave the
// region. Returns (ended at exit, all paths exited the region).
func (c *checker) walk(stmts []ast.Stmt, ended, branchExits bool) (bool, bool) {
	for _, s := range stmts {
		var term bool
		ended, term = c.walkStmt(s, ended, branchExits)
		if term {
			return ended, true
		}
	}
	return ended, false
}

func (c *checker) walkStmt(s ast.Stmt, ended, branchExits bool) (bool, bool) {
	if s.End() < c.assignPos {
		return ended, false // entirely before the span starts
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		return c.walk(st.List, ended, branchExits)
	case *ast.LabeledStmt:
		return c.walkStmt(st.Stmt, ended, branchExits)
	case *ast.DeferStmt:
		// A deferred end covers every later exit from the function; a
		// deferred func literal is scanned for the same call.
		if c.endsSpan(st.Call) {
			return true, false
		}
		return ended, false
	case *ast.ReturnStmt:
		if !ended && st.Pos() > c.assignPos {
			c.leaks = append(c.leaks, leak{st.Pos(), "return"})
		}
		return ended, true
	case *ast.BranchStmt:
		if branchExits && (st.Tok == token.BREAK || st.Tok == token.CONTINUE) {
			if !ended && st.Pos() > c.assignPos {
				c.leaks = append(c.leaks, leak{st.Pos(), strings.ToLower(st.Tok.String())})
			}
			return ended, true
		}
		return ended, false
	case *ast.IfStmt:
		return c.walkIf(st, ended, branchExits)
	case *ast.ForStmt:
		// Nested loop: spans started outside are not exited by its
		// break/continue, and the body may run zero times.
		c.walk(st.Body.List, ended || contains(st, c.assignPos), false)
		return ended, false
	case *ast.RangeStmt:
		c.walk(st.Body.List, ended || contains(st, c.assignPos), false)
		return ended, false
	case *ast.SwitchStmt:
		return c.walkCases(st.Body, ended, branchExits)
	case *ast.TypeSwitchStmt:
		return c.walkCases(st.Body, ended, branchExits)
	case *ast.SelectStmt:
		return c.walkCases(st.Body, ended, branchExits)
	case *ast.GoStmt:
		return ended, false
	default:
		// Simple statements: an EndSpan call anywhere inside counts.
		if c.endsSpan(s) {
			return true, false
		}
		return ended, false
	}
}

// walkIf handles the two if idioms. When the assignment is inside one
// arm, only that arm's paths matter (the other arm never started the
// span). Otherwise both arms are walked; an arm that ends the span and
// falls through propagates ended (the `if rec != nil { EndSpan }`
// guard idiom), while an arm that exits keeps its state off the
// fallthrough path.
func (c *checker) walkIf(st *ast.IfStmt, ended, branchExits bool) (bool, bool) {
	if contains(st.Body, c.assignPos) {
		return c.walk(st.Body.List, ended, branchExits)
	}
	if st.Else != nil && contains(st.Else, c.assignPos) {
		return c.walkStmt(st.Else, ended, branchExits)
	}
	thenEnded, thenTerm := c.walk(st.Body.List, ended, branchExits)
	if st.Else == nil {
		if !thenTerm && thenEnded {
			return true, false
		}
		return ended, false
	}
	elseEnded, elseTerm := c.walkStmt(st.Else, ended, branchExits)
	switch {
	case thenTerm && elseTerm:
		return ended, true
	case thenTerm:
		return elseEnded, false
	case elseTerm:
		return thenEnded, false
	default:
		return thenEnded && elseEnded, false
	}
}

// walkCases walks each case/comm clause independently; falling out of
// the switch keeps the entry state unless every clause ends the span.
func (c *checker) walkCases(body *ast.BlockStmt, ended, branchExits bool) (bool, bool) {
	if len(body.List) == 0 {
		return ended, false
	}
	allEnd, hasDefault := true, false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch clause := cl.(type) {
		case *ast.CaseClause:
			stmts = clause.Body
			hasDefault = hasDefault || clause.List == nil
		case *ast.CommClause:
			stmts = clause.Body
			hasDefault = hasDefault || clause.Comm == nil
		}
		if contains(cl, c.assignPos) {
			return c.walk(stmts, ended, branchExits)
		}
		// break inside a switch leaves the switch, not the loop region.
		clEnded, clTerm := c.walk(stmts, ended, false)
		if !clTerm && !clEnded {
			allEnd = false
		}
		_ = clTerm
	}
	if hasDefault && allEnd {
		return true, false
	}
	return ended, false
}

// endsSpan reports whether node contains a call `<recv>.EndSpan(x, ...)`
// for the tracked variable, including inside deferred func literals.
func (c *checker) endsSpan(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isMethodCall(call, "EndSpan") || len(call.Args) == 0 {
			return true
		}
		if ident, ok := call.Args[0].(*ast.Ident); ok && ident.Name == c.varName {
			found = true
			return false
		}
		return true
	})
	return found
}

func isMethodCall(call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == name
}

func contains(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}
