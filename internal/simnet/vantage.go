package simnet

import (
	"context"
	"net/netip"
)

// The paper's measurements ran from a single vantage point and § V-A
// flags multi-vantage scanning as future work: servers may answer only
// certain source ranges (geo-fencing) or answer differently by source.
// This file adds both halves: per-server source ACLs, and vantage-bound
// transports that stamp a source address on every exchange.

// ACL decides whether a server answers a query from the given source.
type ACL func(src netip.Addr) bool

// AllowPrefix builds an ACL admitting only sources within the prefix.
func AllowPrefix(prefix netip.Prefix) ACL {
	return func(src netip.Addr) bool { return prefix.Contains(src) }
}

// DefaultVantage is the source address used by the plain
// Network.Exchange — the study's single measurement vantage (a
// university network, per § III-B).
var DefaultVantage = netip.MustParseAddr("198.18.0.1")

// SetACL installs a source filter for the server at addr. A nil ACL
// removes the restriction.
func (n *Network) SetACL(addr netip.Addr, acl ACL) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.acls == nil {
		n.acls = make(map[netip.Addr]ACL)
	}
	if acl == nil {
		delete(n.acls, addr)
		return
	}
	n.acls[addr] = acl
}

// aclAllows reports whether the server at addr answers src.
func (n *Network) aclAllows(addr, src netip.Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	acl, ok := n.acls[addr]
	if !ok {
		return true
	}
	return acl(src)
}

// Vantage is a transport bound to a source address; exchanges are
// subject to server ACLs.
type Vantage struct {
	net *Network
	src netip.Addr
}

// Vantage returns a transport that sends from src.
func (n *Network) Vantage(src netip.Addr) *Vantage {
	return &Vantage{net: n, src: src}
}

// Source returns the vantage's source address.
func (v *Vantage) Source() netip.Addr { return v.src }

// Exchange implements the resolver transport from this vantage.
func (v *Vantage) Exchange(ctx context.Context, addr netip.Addr, query []byte) ([]byte, error) {
	return v.net.exchangeFrom(ctx, v.src, addr, query)
}
