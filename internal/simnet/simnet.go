// Package simnet provides the in-memory network that carries DNS queries
// between the measurement client and the synthetic authoritative servers.
// Messages cross the network in wire format, so the full codec is
// exercised exactly as it would be over UDP. The network models latency,
// random packet loss, and blackholed (unresponsive) addresses — the raw
// material of lame delegations.
//
// Simnet's LossRate draws from a shared rng, so which exchange is lost
// depends on arrival order — fine for soak-style runs, useless for
// reproducible adversity. For deterministic, content-keyed fault
// schedules (drops, duplicates, truncation, corrupted IDs, flapping
// servers), wrap the network with internal/chaos instead and leave
// LossRate at zero.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"govdns/internal/authserver"
)

// Network errors.
var (
	// ErrNoRoute indicates no server is attached at the address. The
	// resolver treats it like a timeout (an address that never answers),
	// but keeping it distinct helps the world generator's own tests.
	ErrNoRoute = errors.New("simnet: no server at address")
	// ErrDropped indicates the query or response was lost (packet loss,
	// blackhole, or a server that drops queries).
	ErrDropped = errors.New("simnet: packet dropped")
)

// Config tunes network behaviour.
type Config struct {
	// Latency is the one-way base delay applied to each exchange. Zero
	// (the default) keeps large simulations fast.
	Latency time.Duration
	// Jitter adds up to this much random extra delay per exchange.
	Jitter time.Duration
	// LossRate is the probability in [0,1) that an exchange is lost.
	LossRate float64
	// Seed makes loss and jitter deterministic.
	Seed int64
}

// Network is the simulated Internet. It is safe for concurrent use.
type Network struct {
	cfg Config

	mu      sync.RWMutex
	servers map[netip.Addr]*authserver.Server
	blackh  map[netip.Addr]bool
	acls    map[netip.Addr]ACL
	rng     *rand.Rand
}

// New creates an empty network.
func New(cfg Config) *Network {
	return &Network{
		cfg:     cfg,
		servers: make(map[netip.Addr]*authserver.Server),
		blackh:  make(map[netip.Addr]bool),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Attach binds a server to an address. One server may be reachable at
// several addresses (anycast-style), and re-attaching replaces the
// previous binding.
func (n *Network) Attach(addr netip.Addr, s *authserver.Server) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[addr] = s
}

// Detach removes whatever is bound at addr.
func (n *Network) Detach(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.servers, addr)
}

// ServerAt returns the server bound at addr.
func (n *Network) ServerAt(addr netip.Addr) (*authserver.Server, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.servers[addr]
	return s, ok
}

// NumServers returns the number of bound addresses.
func (n *Network) NumServers() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.servers)
}

// Blackhole makes addr drop all traffic regardless of what is attached,
// modelling a dead host or unreachable network.
func (n *Network) Blackhole(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blackh[addr] = true
}

// Unblackhole restores traffic to addr.
func (n *Network) Unblackhole(addr netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blackh, addr)
}

// IsBlackholed reports whether addr currently drops traffic.
func (n *Network) IsBlackholed(addr netip.Addr) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.blackh[addr]
}

// draw returns a loss decision and a jitter duration from the seeded rng.
func (n *Network) draw() (lost bool, jitter time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.LossRate > 0 {
		lost = n.rng.Float64() < n.cfg.LossRate
	}
	if n.cfg.Jitter > 0 {
		jitter = time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
	}
	return lost, jitter
}

// sleep waits for d or until ctx is done.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// waitForTimeout blocks until the context expires, modelling a query that
// will never be answered.
func waitForTimeout(ctx context.Context) error {
	<-ctx.Done()
	return fmt.Errorf("%w: %v", ErrDropped, ctx.Err())
}

// Exchange implements the resolver transport: it sends a wire-format
// query to the server at addr and returns the wire-format response.
// Unanswerable queries (blackholes, loss, unresponsive servers, empty
// addresses, ACL-filtered sources) block until ctx expires, as UDP
// timeouts do. Queries originate from DefaultVantage; use Vantage for
// other source addresses.
func (n *Network) Exchange(ctx context.Context, addr netip.Addr, query []byte) ([]byte, error) {
	return n.exchangeFrom(ctx, DefaultVantage, addr, query)
}

func (n *Network) exchangeFrom(ctx context.Context, src, addr netip.Addr, query []byte) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lost, jitter := n.draw()
	if err := sleep(ctx, n.cfg.Latency+jitter); err != nil {
		return nil, err
	}
	if lost || n.IsBlackholed(addr) || !n.aclAllows(addr, src) {
		return nil, waitForTimeout(ctx)
	}
	server, ok := n.ServerAt(addr)
	if !ok {
		return nil, waitForTimeout(ctx)
	}
	// HandleWire runs the codec on a pooled arena and returns a fresh
	// buffer whose ownership passes to the caller — wrapping layers (the
	// chaos transport) rely on being allowed to mutate it in place. The
	// real socket loops take the other side of that trade: they call
	// HandleWireAppend into one buffer reused across packets, which is
	// safe only because each response is written out before the next
	// read (the aliasing suites in internal/authserver pin this).
	resp := server.HandleWire(query)
	if resp == nil {
		return nil, waitForTimeout(ctx)
	}
	if err := sleep(ctx, n.cfg.Latency); err != nil {
		return nil, err
	}
	return resp, nil
}
