package simnet

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/dnswire"
	"govdns/internal/zone"
)

var (
	testAddr  = netip.MustParseAddr("9.0.0.1")
	otherAddr = netip.MustParseAddr("9.0.0.2")
)

func newTestServer(t *testing.T) *authserver.Server {
	t.Helper()
	z := zone.New("example.")
	z.MustAdd(dnswire.RR{Name: "example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.SOAData{MName: "ns.example.", RName: "h.example."}})
	z.MustAdd(dnswire.RR{Name: "example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.NSData{Host: "ns.example."}})
	z.MustAdd(dnswire.RR{Name: "www.example.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.AData{Addr: netip.MustParseAddr("192.0.2.1")}})
	s := authserver.New("ns.example.")
	s.AddZone(z)
	return s
}

func wireQuery(t *testing.T) []byte {
	t.Helper()
	w, err := dnswire.Encode(dnswire.NewQuery(1, "www.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func shortCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestExchangeDelivers(t *testing.T) {
	n := New(Config{})
	n.Attach(testAddr, newTestServer(t))
	respWire, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t))
	if err != nil {
		t.Fatalf("Exchange: %v", err)
	}
	resp, err := dnswire.Decode(respWire)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != 1 {
		t.Errorf("answers = %d, want 1", len(resp.Answers))
	}
}

func TestExchangeNoRouteTimesOut(t *testing.T) {
	n := New(Config{})
	start := time.Now()
	_, err := n.Exchange(shortCtx(t), otherAddr, wireQuery(t))
	if err == nil {
		t.Fatal("Exchange to empty address succeeded")
	}
	if !errors.Is(err, ErrDropped) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error = %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Error("Exchange returned before the deadline; should block like a UDP timeout")
	}
}

func TestBlackhole(t *testing.T) {
	n := New(Config{})
	n.Attach(testAddr, newTestServer(t))
	n.Blackhole(testAddr)
	if !n.IsBlackholed(testAddr) {
		t.Fatal("IsBlackholed = false after Blackhole")
	}
	if _, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t)); err == nil {
		t.Fatal("blackholed exchange succeeded")
	}
	n.Unblackhole(testAddr)
	if _, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t)); err != nil {
		t.Fatalf("Exchange after Unblackhole: %v", err)
	}
}

func TestUnresponsiveServerTimesOut(t *testing.T) {
	n := New(Config{})
	s := newTestServer(t)
	s.SetBehavior(authserver.BehaviorUnresponsive)
	n.Attach(testAddr, s)
	if _, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t)); err == nil {
		t.Fatal("unresponsive server produced a response")
	}
}

func TestDetach(t *testing.T) {
	n := New(Config{})
	n.Attach(testAddr, newTestServer(t))
	if n.NumServers() != 1 {
		t.Fatalf("NumServers = %d", n.NumServers())
	}
	n.Detach(testAddr)
	if n.NumServers() != 0 {
		t.Fatalf("NumServers after Detach = %d", n.NumServers())
	}
	if _, ok := n.ServerAt(testAddr); ok {
		t.Error("ServerAt found a detached server")
	}
}

func TestLossRateDeterministicWithSeed(t *testing.T) {
	run := func() []bool {
		n := New(Config{LossRate: 0.5, Seed: 42})
		n.Attach(testAddr, newTestServer(t))
		var outcomes []bool
		for i := 0; i < 20; i++ {
			_, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	successes := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss pattern differs at %d with identical seeds", i)
		}
		if a[i] {
			successes++
		}
	}
	if successes == 0 || successes == len(a) {
		t.Errorf("LossRate 0.5 produced %d/%d successes; expected a mix", successes, len(a))
	}
}

func TestLatencyDelays(t *testing.T) {
	n := New(Config{Latency: 10 * time.Millisecond})
	n.Attach(testAddr, newTestServer(t))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	start := time.Now()
	if _, err := n.Exchange(ctx, testAddr, wireQuery(t)); err != nil {
		t.Fatal(err)
	}
	// One-way latency applies twice (query + response).
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("Exchange took %v, want >= 20ms", elapsed)
	}
}

func TestExchangeHonorsCancelledContext(t *testing.T) {
	n := New(Config{})
	n.Attach(testAddr, newTestServer(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Exchange(ctx, testAddr, wireQuery(t)); !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
}

func TestACLFiltersBySource(t *testing.T) {
	n := New(Config{})
	n.Attach(testAddr, newTestServer(t))
	domestic := netip.MustParseAddr("10.1.0.5")
	n.SetACL(testAddr, AllowPrefix(netip.MustParsePrefix("10.1.0.0/16")))

	// Default vantage (outside the prefix) is dropped.
	if _, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t)); err == nil {
		t.Fatal("ACL did not filter the default vantage")
	}
	// Domestic vantage succeeds.
	if _, err := n.Vantage(domestic).Exchange(shortCtx(t), testAddr, wireQuery(t)); err != nil {
		t.Fatalf("domestic vantage filtered: %v", err)
	}
	// Removing the ACL restores default access.
	n.SetACL(testAddr, nil)
	if _, err := n.Exchange(shortCtx(t), testAddr, wireQuery(t)); err != nil {
		t.Fatalf("Exchange after ACL removal: %v", err)
	}
}
