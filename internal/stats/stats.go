// Package stats provides the small statistical helpers the analyses use:
// mode (the paper's per-year NS-count representative), CDFs, percentiles,
// and rate helpers.
package stats

import "sort"

// Mode returns the most frequent value in vals; ties break toward the
// smaller value so results are deterministic. ok is false for an empty
// input.
func Mode(vals []int) (mode int, ok bool) {
	if len(vals) == 0 {
		return 0, false
	}
	counts := make(map[int]int, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	best, bestCount := 0, -1
	for v, c := range counts {
		if c > bestCount || (c == bestCount && v < best) {
			best, bestCount = v, c
		}
	}
	return best, true
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // P(X <= Value)
}

// CDF computes the empirical CDF of vals (input is not modified).
func CDF(vals []float64) []CDFPoint {
	if len(vals) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(j) / n})
		i = j
	}
	return out
}

// IntCDF computes the CDF of integer values.
func IntCDF(vals []int) []CDFPoint {
	f := make([]float64, len(vals))
	for i, v := range vals {
		f[i] = float64(v)
	}
	return CDF(f)
}

// Percentile returns the p-th percentile (0..100) of vals using
// nearest-rank on a sorted copy. ok is false for empty input.
func Percentile(vals []float64, p float64) (float64, bool) {
	if len(vals) == 0 {
		return 0, false
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0], true
	}
	if p >= 100 {
		return sorted[len(sorted)-1], true
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], true
}

// Rate returns num/den as a fraction, or 0 when den is 0.
func Rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Pct returns num/den as a percentage, or 0 when den is 0.
func Pct(num, den int) float64 {
	return Rate(num, den) * 100
}
