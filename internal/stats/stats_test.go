package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMode(t *testing.T) {
	cases := []struct {
		in   []int
		want int
		ok   bool
	}{
		{nil, 0, false},
		{[]int{2}, 2, true},
		{[]int{1, 2, 2, 3}, 2, true},
		{[]int{3, 3, 1, 1}, 1, true}, // tie breaks to smaller value
		{[]int{1, 1, 2, 2, 2}, 2, true},
	}
	for _, tc := range cases {
		got, ok := Mode(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("Mode(%v) = %d, %v; want %d, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestModeIsAMember(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int, len(raw))
		present := make(map[int]bool)
		for i, r := range raw {
			vals[i] = int(r % 5)
			present[vals[i]] = true
		}
		m, ok := Mode(vals)
		return ok && present[m]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{1, 1, 2, 4})
	want := []CDFPoint{{1, 0.5}, {2, 0.75}, {4, 1.0}}
	if len(points) != len(want) {
		t.Fatalf("CDF = %v", points)
	}
	for i := range want {
		if points[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, points[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) != nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		points := CDF(vals)
		prevV, prevF := math.Inf(-1), 0.0
		for _, p := range points {
			if p.Value <= prevV || p.Fraction <= prevF {
				return false
			}
			prevV, prevF = p.Value, p.Fraction
		}
		return len(points) == 0 || points[len(points)-1].Fraction == 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntCDF(t *testing.T) {
	points := IntCDF([]int{1, 2, 2})
	if len(points) != 2 || points[1].Value != 2 || points[1].Fraction != 1 {
		t.Errorf("IntCDF = %v", points)
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{50, 50},
		{100, 100},
		{90, 90},
	}
	for _, tc := range cases {
		got, ok := Percentile(vals, tc.p)
		if !ok || got != tc.want {
			t.Errorf("Percentile(%v) = %v, %v; want %v", tc.p, got, ok, tc.want)
		}
	}
	if _, ok := Percentile(nil, 50); ok {
		t.Error("Percentile(nil) ok")
	}
}

func TestRateAndPct(t *testing.T) {
	if Rate(1, 0) != 0 {
		t.Error("Rate with zero denominator")
	}
	if Rate(1, 4) != 0.25 {
		t.Error("Rate(1,4)")
	}
	if Pct(1, 4) != 25 {
		t.Error("Pct(1,4)")
	}
}
