// Package geoip provides the study's substitute for MaxMind's GeoIP2 ASN
// database: a range-indexed IPv4 → (ASN, organisation) lookup table. The
// table is generated from the synthetic topology (internal/nettopo) and
// supports the same two lookups the paper needs for Table I — the ASN and
// the /24 prefix of each nameserver address.
package geoip

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"govdns/internal/nettopo"
)

// Lookup errors.
var (
	// ErrNotFound indicates the address is not covered by any range.
	ErrNotFound = errors.New("geoip: address not in database")
	// ErrBadFormat indicates a malformed CSV row during import.
	ErrBadFormat = errors.New("geoip: bad row")
)

// Record is the result of a lookup.
type Record struct {
	ASN uint32
	Org string
}

// DB is an immutable, binary-searchable ASN database.
type DB struct {
	starts []uint32
	ends   []uint32
	recs   []Record
}

// FromTopology builds a database from the topology's allocated ranges.
func FromTopology(t *nettopo.Topology) *DB {
	return fromRanges(t.Ranges())
}

func fromRanges(ranges []nettopo.Range) *DB {
	db := &DB{
		starts: make([]uint32, len(ranges)),
		ends:   make([]uint32, len(ranges)),
		recs:   make([]Record, len(ranges)),
	}
	for i, r := range ranges {
		db.starts[i] = r.Start
		db.ends[i] = r.End
		db.recs[i] = Record{ASN: r.ASN, Org: r.Org}
	}
	return db
}

// Len returns the number of ranges in the database.
func (db *DB) Len() int { return len(db.starts) }

// Lookup returns the ASN record covering addr.
func (db *DB) Lookup(addr netip.Addr) (Record, error) {
	if !addr.Is4() {
		return Record{}, fmt.Errorf("%w: %v is not IPv4", ErrNotFound, addr)
	}
	v := nettopo.IPv4Value(addr)
	// First range with start > v, then step back one.
	i := sort.Search(len(db.starts), func(i int) bool { return db.starts[i] > v })
	if i == 0 {
		return Record{}, fmt.Errorf("%w: %v", ErrNotFound, addr)
	}
	i--
	if v > db.ends[i] {
		return Record{}, fmt.Errorf("%w: %v", ErrNotFound, addr)
	}
	return db.recs[i], nil
}

// ASN is a convenience wrapper returning only the AS number, with ok=false
// when the address is unknown.
func (db *DB) ASN(addr netip.Addr) (uint32, bool) {
	rec, err := db.Lookup(addr)
	if err != nil {
		return 0, false
	}
	return rec.ASN, true
}

// WriteCSV exports the database in a MaxMind-like CSV schema:
// network_start,network_end,asn,organisation.
func (db *DB) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range db.starts {
		// Organisation names are Go-quoted (%q); ReadCSV unquotes them.
		if _, err := fmt.Fprintf(bw, "%s,%s,%d,%q\n",
			nettopo.IPv4(db.starts[i]), nettopo.IPv4(db.ends[i]), db.recs[i].ASN, db.recs[i].Org); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV imports a database written by WriteCSV. Rows must be sorted and
// non-overlapping, as WriteCSV produces them.
func ReadCSV(r io.Reader) (*DB, error) {
	var ranges []nettopo.Range
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ",", 4)
		if len(parts) != 4 {
			return nil, fmt.Errorf("%w: line %d has %d fields", ErrBadFormat, lineNo, len(parts))
		}
		start, err := netip.ParseAddr(parts[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d start: %v", ErrBadFormat, lineNo, err)
		}
		end, err := netip.ParseAddr(parts[1])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d end: %v", ErrBadFormat, lineNo, err)
		}
		asn, err := strconv.ParseUint(parts[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d asn: %v", ErrBadFormat, lineNo, err)
		}
		org, err := strconv.Unquote(parts[3])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d org: %v", ErrBadFormat, lineNo, err)
		}
		ranges = append(ranges, nettopo.Range{
			Start: nettopo.IPv4Value(start),
			End:   nettopo.IPv4Value(end),
			ASN:   uint32(asn),
			Org:   org,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("geoip: reading CSV: %w", err)
	}
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Start <= ranges[i-1].End {
			return nil, fmt.Errorf("%w: ranges unsorted or overlapping at row %d", ErrBadFormat, i+1)
		}
	}
	return fromRanges(ranges), nil
}
