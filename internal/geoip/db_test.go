package geoip

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"

	"govdns/internal/nettopo"
)

func buildTestDB(t *testing.T) (*DB, *nettopo.Topology, map[uint32]netip.Addr) {
	t.Helper()
	topo := nettopo.NewTopology()
	addrs := make(map[uint32]netip.Addr)
	for asn := uint32(64500); asn < 64510; asn++ {
		topo.AddAS(asn, "Test Org "+string(rune('A'+asn-64500)))
		addr, err := topo.AllocIP(asn)
		if err != nil {
			t.Fatal(err)
		}
		addrs[asn] = addr
	}
	return FromTopology(topo), topo, addrs
}

func TestLookupFindsAllocatedAddresses(t *testing.T) {
	db, _, addrs := buildTestDB(t)
	for asn, addr := range addrs {
		rec, err := db.Lookup(addr)
		if err != nil {
			t.Errorf("Lookup(%v): %v", addr, err)
			continue
		}
		if rec.ASN != asn {
			t.Errorf("Lookup(%v).ASN = %d, want %d", addr, rec.ASN, asn)
		}
	}
}

func TestLookupMissReturnsErrNotFound(t *testing.T) {
	db, _, _ := buildTestDB(t)
	for _, s := range []string{"0.0.0.1", "223.255.255.1"} {
		if _, err := db.Lookup(netip.MustParseAddr(s)); !errors.Is(err, ErrNotFound) {
			t.Errorf("Lookup(%s) error = %v, want ErrNotFound", s, err)
		}
	}
	if _, err := db.Lookup(netip.MustParseAddr("2001:db8::1")); !errors.Is(err, ErrNotFound) {
		t.Error("IPv6 lookup should be ErrNotFound")
	}
}

func TestASNConvenience(t *testing.T) {
	db, _, addrs := buildTestDB(t)
	for asn, addr := range addrs {
		got, ok := db.ASN(addr)
		if !ok || got != asn {
			t.Errorf("ASN(%v) = %d, %v; want %d, true", addr, got, ok, asn)
		}
		break
	}
	if _, ok := db.ASN(netip.MustParseAddr("0.0.0.1")); ok {
		t.Error("ASN returned ok for unknown address")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db, _, addrs := buildTestDB(t)
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	db2, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v\ncsv:\n%s", err, buf.String())
	}
	if db2.Len() != db.Len() {
		t.Fatalf("round trip changed range count: %d -> %d", db.Len(), db2.Len())
	}
	for asn, addr := range addrs {
		rec, err := db2.Lookup(addr)
		if err != nil || rec.ASN != asn {
			t.Errorf("reloaded Lookup(%v) = %+v, %v; want ASN %d", addr, rec, err, asn)
		}
	}
}

func TestCSVQuotedOrg(t *testing.T) {
	topo := nettopo.NewTopology()
	topo.AddAS(1, `Quote "Inc", comma`)
	if _, err := topo.AllocIP(1); err != nil {
		t.Fatal(err)
	}
	db := FromTopology(topo)
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	rec, err := db2.Lookup(nettopo.IPv4(0x01000001))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Org != `Quote "Inc", comma` {
		t.Errorf("Org = %q", rec.Org)
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := []string{
		"1.0.0.0,1.0.255.255,65001",                                // missing org
		"nope,1.0.255.255,65001,\"x\"",                             // bad start
		"1.0.0.0,nope,65001,\"x\"",                                 // bad end
		"1.0.0.0,1.0.255.255,notanum,\"x\"",                        // bad asn
		"1.0.0.0,1.0.255.255,65001,unquoted",                       // bad org quoting
		"2.0.0.0,2.0.255.255,1,\"a\"\n1.0.0.0,1.0.255.255,2,\"b\"", // unsorted
	}
	for _, input := range cases {
		if _, err := ReadCSV(strings.NewReader(input)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("ReadCSV(%q) error = %v, want ErrBadFormat", input, err)
		}
	}
}

func TestLookupCoversWholeRange(t *testing.T) {
	topo := nettopo.NewTopology()
	topo.AddAS(7, "Org")
	if _, err := topo.AllocIP(7); err != nil {
		t.Fatal(err)
	}
	db := FromTopology(topo)
	ranges := topo.Ranges()
	for _, v := range []uint32{ranges[0].Start, ranges[0].Start + 1000, ranges[0].End} {
		if _, err := db.Lookup(nettopo.IPv4(v)); err != nil {
			t.Errorf("Lookup(%v): %v", nettopo.IPv4(v), err)
		}
	}
	if _, err := db.Lookup(nettopo.IPv4(ranges[0].End + 1)); err == nil {
		t.Error("Lookup just past the range succeeded")
	}
}
