package pdns

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

func TestDayConversions(t *testing.T) {
	d := Date(2020, time.March, 15)
	if d.Time() != time.Date(2020, time.March, 15, 0, 0, 0, 0, time.UTC) {
		t.Errorf("Time() = %v", d.Time())
	}
	if d.Year() != 2020 {
		t.Errorf("Year() = %d", d.Year())
	}
	if d.String() != "2020-03-15" {
		t.Errorf("String() = %q", d.String())
	}
	if DayOf(time.Date(2020, time.March, 15, 23, 59, 0, 0, time.UTC)) != d {
		t.Error("DayOf ignores time-of-day incorrectly")
	}
}

func TestYearRange(t *testing.T) {
	from, to := YearRange(2020)
	if from.String() != "2020-01-01" || to.String() != "2020-12-31" {
		t.Errorf("YearRange(2020) = %s..%s", from, to)
	}
	// 2020 is a leap year: 366 days.
	if int(to-from)+1 != 366 {
		t.Errorf("2020 has %d days", int(to-from)+1)
	}
}

func TestObserveCreatesAndExtends(t *testing.T) {
	s := NewStore()
	d1 := Date(2015, time.June, 1)
	d2 := Date(2015, time.June, 20)
	d0 := Date(2015, time.May, 20)
	s.Observe("x.gov.br.", dnswire.TypeNS, "ns1.gov.br.", d1)
	s.Observe("x.gov.br.", dnswire.TypeNS, "ns1.gov.br.", d2)
	s.Observe("x.gov.br.", dnswire.TypeNS, "ns1.gov.br.", d0)

	sets := s.Lookup("x.gov.br.", dnswire.TypeNS)
	if len(sets) != 1 {
		t.Fatalf("got %d record sets", len(sets))
	}
	rs := sets[0]
	if rs.FirstSeen != d0 || rs.LastSeen != d2 || rs.Count != 3 {
		t.Errorf("record set = %+v", rs)
	}
	if rs.DurationDays() != 32 {
		t.Errorf("DurationDays = %d, want 32", rs.DurationDays())
	}
}

func TestObserveRange(t *testing.T) {
	s := NewStore()
	from, to := Date(2012, time.January, 1), Date(2012, time.January, 10)
	s.ObserveRange("y.gov.br.", dnswire.TypeNS, "ns1.y.gov.br.", from, to)
	sets := s.Lookup("y.gov.br.", dnswire.TypeNS)
	if len(sets) != 1 || sets[0].FirstSeen != from || sets[0].LastSeen != to {
		t.Fatalf("sets = %+v", sets)
	}
	if sets[0].Count != 10 {
		t.Errorf("Count = %d, want 10", sets[0].Count)
	}
	// Reversed arguments are normalised.
	s.ObserveRange("y.gov.br.", dnswire.TypeNS, "ns1.y.gov.br.", to+5, from-5)
	sets = s.Lookup("y.gov.br.", dnswire.TypeNS)
	if sets[0].FirstSeen != from-5 || sets[0].LastSeen != to+5 {
		t.Errorf("after reversed range: %+v", sets[0])
	}
}

func TestLookupFiltersByType(t *testing.T) {
	s := NewStore()
	d := Date(2019, time.July, 1)
	s.Observe("x.gov.br.", dnswire.TypeNS, "ns1.gov.br.", d)
	s.Observe("x.gov.br.", dnswire.TypeA, "192.0.2.1", d)
	if got := len(s.Lookup("x.gov.br.", dnswire.TypeNS)); got != 1 {
		t.Errorf("NS lookup = %d sets", got)
	}
	if got := len(s.Lookup("x.gov.br.", 0)); got != 2 {
		t.Errorf("all-type lookup = %d sets", got)
	}
}

func TestWildcardSearch(t *testing.T) {
	s := NewStore()
	d := Date(2020, time.February, 2)
	s.Observe("a.gov.br.", dnswire.TypeNS, "ns1.a.gov.br.", d)
	s.Observe("b.a.gov.br.", dnswire.TypeNS, "ns1.b.a.gov.br.", d)
	s.Observe("c.gov.cn.", dnswire.TypeNS, "ns1.c.gov.cn.", d)
	s.Observe("gov.br.", dnswire.TypeNS, "ns1.gov.br.", d)

	got := s.WildcardSearch("gov.br.", dnswire.TypeNS)
	if len(got) != 3 {
		t.Fatalf("WildcardSearch(gov.br.) = %d sets, want 3", len(got))
	}
	for _, rs := range got {
		if !rs.RRName.IsSubdomainOf("gov.br.") {
			t.Errorf("out-of-scope result %q", rs.RRName)
		}
	}
	if len(s.Snapshot()) != 4 {
		t.Errorf("Snapshot = %d sets", len(s.Snapshot()))
	}
}

func TestStableFilter(t *testing.T) {
	s := NewStore()
	start := Date(2020, time.May, 1)
	// 1-day transient record vs 10-day stable record.
	s.Observe("flaky.gov.br.", dnswire.TypeNS, "ns.ddos-shield.com.", start)
	s.ObserveRange("steady.gov.br.", dnswire.TypeNS, "ns1.gov.br.", start, start+9)

	v := NewView(s.Snapshot())
	stable := v.Stable(StabilityFilterDays)
	if len(stable.Sets) != 1 || stable.Sets[0].RRName != "steady.gov.br." {
		t.Errorf("Stable sets = %+v", stable.Sets)
	}
	// Threshold is inclusive: exactly 7 days passes.
	s.ObserveRange("exact.gov.br.", dnswire.TypeNS, "ns1.gov.br.", start, start+6)
	stable = NewView(s.Snapshot()).Stable(StabilityFilterDays)
	if len(stable.Sets) != 2 {
		t.Errorf("inclusive threshold: %d sets, want 2", len(stable.Sets))
	}
}

func TestViewBetweenAndOfType(t *testing.T) {
	s := NewStore()
	s.ObserveRange("old.gov.br.", dnswire.TypeNS, "ns1.", Date(2011, 1, 1), Date(2012, 6, 30))
	s.ObserveRange("new.gov.br.", dnswire.TypeNS, "ns2.", Date(2019, 1, 1), Date(2020, 6, 30))
	s.ObserveRange("new.gov.br.", dnswire.TypeA, "192.0.2.1", Date(2019, 1, 1), Date(2020, 6, 30))

	v := NewView(s.Snapshot())
	y2012from, y2012to := YearRange(2012)
	in2012 := v.Between(y2012from, y2012to)
	if names := in2012.Names(); len(names) != 1 || names[0] != "old.gov.br." {
		t.Errorf("2012 names = %v", names)
	}
	y2020from, y2020to := YearRange(2020)
	in2020 := v.Between(y2020from, y2020to).OfType(dnswire.TypeNS)
	if len(in2020.Sets) != 1 || in2020.Sets[0].RData != "ns2." {
		t.Errorf("2020 NS sets = %+v", in2020.Sets)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := NewStore()
	s.ObserveRange("a.gov.br.", dnswire.TypeNS, "ns1.a.gov.br.", Date(2011, 3, 1), Date(2015, 4, 1))
	s.Observe("b.gov.cn.", dnswire.TypeNS, "ns1.hichina.com.", Date(2020, 7, 7))
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	s2, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if s2.Len() != s.Len() {
		t.Fatalf("round trip changed Len: %d -> %d", s.Len(), s2.Len())
	}
	a, b := s.Snapshot(), s2.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("record %d: %+v != %+v", i, a[i], b[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("ReadJSONL accepted garbage")
	}
}

func TestActiveOnOverlapsProperty(t *testing.T) {
	f := func(first, length uint16, probe int16) bool {
		rs := RecordSet{FirstSeen: Day(first), LastSeen: Day(first) + Day(length%400)}
		d := Day(int32(first) + int32(probe%500))
		want := d >= rs.FirstSeen && d <= rs.LastSeen
		if rs.ActiveOn(d) != want {
			return false
		}
		// A record always overlaps its own window.
		return rs.Overlaps(rs.FirstSeen, rs.LastSeen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentObserve(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				s.Observe("x.gov.br.", dnswire.TypeNS, "ns1.gov.br.", Date(2020, 1, 1)+Day(i%30))
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	sets := s.Lookup("x.gov.br.", dnswire.TypeNS)
	if len(sets) != 1 || sets[0].Count != 1600 {
		t.Errorf("after concurrent observes: %+v", sets)
	}
}

// TestBulkReadsSortOutsideLock pins the lock scope of the bulk read
// paths: by the time the result is sorted, the store must be fully
// unlocked, so a writer can take the write lock immediately.
func TestBulkReadsSortOutsideLock(t *testing.T) {
	s := NewStore()
	d := Date(2015, time.June, 1)
	s.Observe("a.gov.br.", dnswire.TypeNS, "ns1.gov.br.", d)
	s.Observe("b.gov.br.", dnswire.TypeNS, "ns2.gov.br.", d)

	locked := true
	sortOutsideLockHook = func() {
		if s.mu.TryLock() {
			s.mu.Unlock()
			locked = false
		}
	}
	defer func() { sortOutsideLockHook = nil }()

	s.Snapshot()
	if locked {
		t.Error("WildcardSearch still holds the store lock while sorting")
	}
	locked = true
	s.Lookup("a.gov.br.", dnswire.TypeNS)
	if locked {
		t.Error("Lookup still holds the store lock while sorting")
	}
}

// TestWildcardSearchAdmitsWritersDuringSort is the starvation
// regression test: an Observe writer must complete while a bulk read
// is still busy sorting its result. Before the fix the sort ran under
// the read lock, so one big Snapshot parked every writer (and, through
// the pending writer, every later reader) for the whole O(n log n)
// sort.
func TestWildcardSearchAdmitsWritersDuringSort(t *testing.T) {
	s := NewStore()
	d := Date(2015, time.June, 1)
	for i := 0; i < 100; i++ {
		s.Observe(dnsname.Name(fmt.Sprintf("d%03d.gov.br.", i)), dnswire.TypeNS, "ns1.gov.br.", d)
	}

	inSort := make(chan struct{})
	release := make(chan struct{})
	sortOutsideLockHook = func() {
		close(inSort)
		<-release
	}
	defer func() { sortOutsideLockHook = nil }()

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Snapshot()
	}()

	<-inSort
	wrote := make(chan struct{})
	go func() {
		defer close(wrote)
		s.Observe("new.gov.br.", dnswire.TypeNS, "ns9.gov.br.", d)
	}()
	select {
	case <-wrote:
		// The writer got in while the reader was parked in its sort
		// phase — the lock was released before sorting.
	case <-time.After(5 * time.Second):
		t.Fatal("Observe blocked while WildcardSearch sorted its result")
	}
	close(release)
	<-done
}

// BenchmarkReadJSONL measures a full dump load — the path pdnsq pays
// on every invocation. ReadJSONL sizes its maps and record arena from
// a first-pass line count.
func BenchmarkReadJSONL(b *testing.B) {
	s := NewStore()
	base := Date(2015, time.January, 1)
	for i := 0; i < 5000; i++ {
		name := dnsname.Name(fmt.Sprintf("d%04d.gov.br.", i))
		s.ObserveRange(name, dnswire.TypeNS, fmt.Sprintf("ns%d.host.gov.br.", i%97), base, base+30)
		s.ObserveRange(name, dnswire.TypeA, "198.51.100.7", base, base+30)
	}
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportMetric(float64(s.Len()), "recordsets")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if loaded.Len() != s.Len() {
			b.Fatalf("loaded %d sets, want %d", loaded.Len(), s.Len())
		}
	}
}
