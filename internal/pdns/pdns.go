// Package pdns implements the study's substitute for Farsight's DNSDB: a
// passive-DNS store of record sets keyed by (rrname, rrtype, rdata) with
// first-seen/last-seen timestamps, left-hand wildcard search, time-range
// filtering, and the 7-day stability filter from § III-C of the paper.
//
// The store is populated by the longitudinal world evolver
// (internal/worldgen) and queried by the passive analyses
// (internal/analysis): domain/nameserver growth, single-NS trends, and
// provider adoption over 2011–2020.
package pdns

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// Day is a calendar day in UTC, the store's time granularity. Farsight
// timestamps are second-granular, but every analysis in the paper works
// on days.
type Day int32

// DayOf converts a time to its Day.
func DayOf(t time.Time) Day {
	return Day(t.UTC().Unix() / 86400)
}

// Date builds a Day from a calendar date.
func Date(year int, month time.Month, day int) Day {
	return DayOf(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time returns the Day's midnight UTC.
func (d Day) Time() time.Time {
	return time.Unix(int64(d)*86400, 0).UTC()
}

// Year returns the calendar year containing d.
func (d Day) Year() int { return d.Time().Year() }

// String formats the day as YYYY-MM-DD.
func (d Day) String() string { return d.Time().Format("2006-01-02") }

// YearRange returns the first and last Day of a calendar year.
func YearRange(year int) (Day, Day) {
	return Date(year, time.January, 1), Date(year, time.December, 31)
}

// RecordSet is one passive-DNS aggregate: a unique (rrname, rrtype,
// rdata) tuple and the window over which sensors observed it.
type RecordSet struct {
	RRName    dnsname.Name `json:"rrname"`
	RRType    dnswire.Type `json:"rrtype"`
	RData     string       `json:"rdata"`
	FirstSeen Day          `json:"time_first"`
	LastSeen  Day          `json:"time_last"`
	Count     uint64       `json:"count"`
}

// ActiveOn reports whether the record was observed on or around day d
// (within its first/last-seen window).
func (rs *RecordSet) ActiveOn(d Day) bool {
	return rs.FirstSeen <= d && d <= rs.LastSeen
}

// Overlaps reports whether the record's window intersects [from, to].
func (rs *RecordSet) Overlaps(from, to Day) bool {
	return rs.FirstSeen <= to && from <= rs.LastSeen
}

// DurationDays returns the number of days in the observation window
// (inclusive; a record seen once has duration 1).
func (rs *RecordSet) DurationDays() int {
	return int(rs.LastSeen-rs.FirstSeen) + 1
}

// key identifies a record set.
type key struct {
	name  dnsname.Name
	rtype dnswire.Type
	rdata string
}

// Store is the passive-DNS database. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	sets map[key]*RecordSet
	// byName groups record-set keys by owner name for wildcard search.
	byName map[dnsname.Name][]key
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{
		sets:   make(map[key]*RecordSet),
		byName: make(map[dnsname.Name][]key),
	}
}

// Observe records that (name, rtype, rdata) was seen on day d, creating
// or extending the record set, and increments its observation count.
func (s *Store) Observe(name dnsname.Name, rtype dnswire.Type, rdata string, d Day) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key{name: name, rtype: rtype, rdata: rdata}
	rs, ok := s.sets[k]
	if !ok {
		rs = &RecordSet{RRName: name, RRType: rtype, RData: rdata, FirstSeen: d, LastSeen: d}
		s.sets[k] = rs
		s.byName[name] = append(s.byName[name], k)
	}
	if d < rs.FirstSeen {
		rs.FirstSeen = d
	}
	if d > rs.LastSeen {
		rs.LastSeen = d
	}
	rs.Count++
}

// ObserveRange records an observation window [from, to] in one call,
// counting one observation per day.
func (s *Store) ObserveRange(name dnsname.Name, rtype dnswire.Type, rdata string, from, to Day) {
	if to < from {
		from, to = to, from
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := key{name: name, rtype: rtype, rdata: rdata}
	rs, ok := s.sets[k]
	if !ok {
		rs = &RecordSet{RRName: name, RRType: rtype, RData: rdata, FirstSeen: from, LastSeen: to}
		s.sets[k] = rs
		s.byName[name] = append(s.byName[name], k)
	}
	if from < rs.FirstSeen {
		rs.FirstSeen = from
	}
	if to > rs.LastSeen {
		rs.LastSeen = to
	}
	rs.Count += uint64(to-from) + 1
}

// Len returns the number of record sets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sets)
}

// sortOutsideLockHook, when non-nil, runs after a bulk read copies its
// result and releases the store lock, before the sort. Test seam: the
// lock-scope regression tests use it to prove writers are admitted
// while the sort runs.
var sortOutsideLockHook func()

// finishSets is the tail of every bulk read: it runs after the store
// lock is released, because sorting a full snapshot is O(n log n) name
// comparisons — holding even the read lock that long parks every
// Observe writer (and, since a waiting writer blocks later readers,
// eventually the whole store) behind one slow reader. Only the copy
// needs the lock.
func finishSets(out []RecordSet) []RecordSet {
	if sortOutsideLockHook != nil {
		sortOutsideLockHook()
	}
	sortSets(out)
	return out
}

// Lookup returns the record sets for an exact owner name, optionally
// filtered by type (pass 0 or dnswire.TypeANY for all types).
func (s *Store) Lookup(name dnsname.Name, rtype dnswire.Type) []RecordSet {
	s.mu.RLock()
	var out []RecordSet
	for _, k := range s.byName[name] {
		if rtype != 0 && rtype != dnswire.TypeANY && k.rtype != rtype {
			continue
		}
		out = append(out, *s.sets[k])
	}
	s.mu.RUnlock()
	return finishSets(out)
}

// WildcardSearch returns every record set whose owner name is the suffix
// itself or below it — the DNSDB "*.suffix" left-hand wildcard search the
// paper used to expand seed domains. Pass rtype 0 for all types.
func (s *Store) WildcardSearch(suffix dnsname.Name, rtype dnswire.Type) []RecordSet {
	s.mu.RLock()
	var out []RecordSet
	for name, keys := range s.byName {
		if !name.IsSubdomainOf(suffix) {
			continue
		}
		for _, k := range keys {
			if rtype != 0 && rtype != dnswire.TypeANY && k.rtype != rtype {
				continue
			}
			out = append(out, *s.sets[k])
		}
	}
	s.mu.RUnlock()
	return finishSets(out)
}

// Snapshot returns a copy of every record set.
func (s *Store) Snapshot() []RecordSet {
	return s.WildcardSearch(dnsname.Root, 0)
}

func sortSets(sets []RecordSet) {
	sort.Slice(sets, func(i, j int) bool {
		if c := dnsname.Compare(sets[i].RRName, sets[j].RRName); c != 0 {
			return c < 0
		}
		if sets[i].RRType != sets[j].RRType {
			return sets[i].RRType < sets[j].RRType
		}
		return sets[i].RData < sets[j].RData
	})
}

// View is an immutable filtered slice of a store, the unit the analyses
// consume.
type View struct {
	Sets []RecordSet
}

// NewView wraps record sets in a View.
func NewView(sets []RecordSet) *View {
	return &View{Sets: sets}
}

// StabilityFilterDays is the paper's threshold for separating stable
// records from transient ones: the largest default maximum cache TTL
// among popular resolvers (7 days).
const StabilityFilterDays = 7

// Stable returns a View containing only record sets whose observation
// window spans at least minDays days — § III-C's filter for removing
// transient records (misconfigurations, DDoS-protection flips, expired
// domains). Pass StabilityFilterDays for the paper's setting.
func (v *View) Stable(minDays int) *View {
	out := make([]RecordSet, 0, len(v.Sets))
	for _, rs := range v.Sets {
		if rs.DurationDays() >= minDays {
			out = append(out, rs)
		}
	}
	return &View{Sets: out}
}

// Between returns the record sets active at any point in [from, to].
func (v *View) Between(from, to Day) *View {
	out := make([]RecordSet, 0, len(v.Sets))
	for _, rs := range v.Sets {
		if rs.Overlaps(from, to) {
			out = append(out, rs)
		}
	}
	return &View{Sets: out}
}

// OfType returns the record sets of the given type.
func (v *View) OfType(rtype dnswire.Type) *View {
	out := make([]RecordSet, 0, len(v.Sets))
	for _, rs := range v.Sets {
		if rs.RRType == rtype {
			out = append(out, rs)
		}
	}
	return &View{Sets: out}
}

// Names returns the distinct owner names in the view, sorted.
func (v *View) Names() []dnsname.Name {
	seen := make(map[dnsname.Name]bool)
	var out []dnsname.Name
	for _, rs := range v.Sets {
		if !seen[rs.RRName] {
			seen[rs.RRName] = true
			out = append(out, rs.RRName)
		}
	}
	sort.Slice(out, func(i, j int) bool { return dnsname.Compare(out[i], out[j]) < 0 })
	return out
}

// WriteJSONL streams the store as JSON lines (one record set per line),
// in deterministic order.
func (s *Store) WriteJSONL(w io.Writer) error {
	sets := s.Snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range sets {
		if err := enc.Encode(&sets[i]); err != nil {
			return fmt.Errorf("pdns: encoding record set %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads a store written by WriteJSONL. The whole dump is
// read up front and its line count (one record set per line, as
// WriteJSONL emits) sizes the store's maps and a record-set arena, so
// a load performs a handful of large allocations instead of one per
// record.
func ReadJSONL(r io.Reader) (*Store, error) {
	data, err := io.ReadAll(bufio.NewReader(r))
	if err != nil {
		return nil, fmt.Errorf("pdns: reading dump: %w", err)
	}
	lines := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		lines++
	}
	s := &Store{
		sets:   make(map[key]*RecordSet, lines),
		byName: make(map[dnsname.Name][]key, lines),
	}
	arena := make([]RecordSet, 0, lines)
	dec := json.NewDecoder(bytes.NewReader(data))
	line := 0
	for dec.More() {
		line++
		var rs RecordSet
		if err := dec.Decode(&rs); err != nil {
			return nil, fmt.Errorf("pdns: decoding record set %d: %w", line, err)
		}
		k := key{name: rs.RRName, rtype: rs.RRType, rdata: rs.RData}
		if existing, ok := s.sets[k]; ok {
			if rs.FirstSeen < existing.FirstSeen {
				existing.FirstSeen = rs.FirstSeen
			}
			if rs.LastSeen > existing.LastSeen {
				existing.LastSeen = rs.LastSeen
			}
			existing.Count += rs.Count
			continue
		}
		if len(arena) < cap(arena) {
			// The store aliases arena slots by pointer, so the arena
			// must never reallocate; records beyond the line estimate
			// (possible only for hand-crafted multi-object lines) get
			// individual allocations instead.
			arena = append(arena, rs)
			s.sets[k] = &arena[len(arena)-1]
		} else {
			copied := rs
			s.sets[k] = &copied
		}
		s.byName[rs.RRName] = append(s.byName[rs.RRName], k)
	}
	return s, nil
}
