package providers

import (
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

func TestIdentifyByPattern(t *testing.T) {
	c := Default()
	cases := []struct {
		host string
		key  string
	}{
		{"ns-1234.awsdns-56.com.", "amazon"},
		{"ns-7.awsdns-00.co.uk.", "amazon"},
		{"ns1-03.azure-dns.com.", "azure"},
		{"ns4-205.azure-dns.info.", "azure"},
	}
	for _, tc := range cases {
		p, ok := c.Identify(dnsname.MustParse(tc.host))
		if !ok || p.Key != tc.key {
			t.Errorf("Identify(%s) = %v, %v; want %s", tc.host, p, ok, tc.key)
		}
	}
	// Near misses must not match.
	for _, host := range []string{"ns-12.awsdns.com.", "ns-x.awsdns-1.com.", "ns1.azure-dns.xyz."} {
		if p, ok := c.Identify(dnsname.MustParse(host)); ok {
			t.Errorf("Identify(%s) matched %s; want no match", host, p.Key)
		}
	}
}

func TestIdentifyByDomain(t *testing.T) {
	c := Default()
	cases := []struct {
		host string
		key  string
	}{
		{"alice.ns.cloudflare.com.", "cloudflare"},
		{"ns37.domaincontrol.com.", "godaddy"},
		{"f1g1ns1.dnspod.net.", "dnspod"},
		{"ns1.p13.dynect.net.", "dyn"},
		{"pdns1.ultradns.net.", "ultradns"},
		{"ns1.websitewelcome.com.", "websitewelcome"},
		{"ns123.hostgator.com.br.", "hostgator"},
		{"dns9.hichina.com.", "hichina"},
		{"ns1.dns-diy.net.", "dnsdiy"},
		{"ns1.digitalocean.com.", "digitalocean"},
	}
	for _, tc := range cases {
		p, ok := c.Identify(dnsname.MustParse(tc.host))
		if !ok || p.Key != tc.key {
			t.Errorf("Identify(%s) = %v, %v; want %s", tc.host, p, ok, tc.key)
		}
	}
	if _, ok := c.Identify("ns1.gov.br."); ok {
		t.Error("Identify matched a government nameserver")
	}
	// The bare provider domain itself is not a nameserver hostname.
	if _, ok := c.Identify("cloudflare.com."); ok {
		t.Error("Identify matched the bare provider domain")
	}
}

func TestIdentifySOA(t *testing.T) {
	c := Default()
	soa := dnswire.SOAData{
		MName: "vip1.alidns.com.",
		RName: "hostmaster.hichina.com.",
	}
	p, ok := c.IdentifySOA(soa)
	if !ok || p.Key != "hichina" {
		t.Errorf("IdentifySOA = %v, %v; want hichina", p, ok)
	}
	none := dnswire.SOAData{MName: "ns1.gov.br.", RName: "root.gov.br."}
	if _, ok := c.IdentifySOA(none); ok {
		t.Error("IdentifySOA matched a private SOA")
	}
}

func TestGroupLabel(t *testing.T) {
	c := Default()
	cases := []struct {
		host  string
		label string
		known bool
	}{
		{"ns-99.awsdns-12.net.", "AWS DNS", true},
		{"ns2-04.azure-dns.net.", "Azure DNS", true},
		{"ns77.hostgator.com.", "Hostgator", true},
		{"betty.ns.cloudflare.com.", "cloudflare.com", true},
		{"ns1.unknownhoster.com.", "unknownhoster.com", false},
		{"ns1.some.company.com.br.", "company.com.br", false},
		{"ns1.weird-tld.xx.", "weird-tld.xx", false},
	}
	for _, tc := range cases {
		label, known := c.GroupLabel(dnsname.MustParse(tc.host))
		if label != tc.label || known != tc.known {
			t.Errorf("GroupLabel(%s) = %q, %v; want %q, %v", tc.host, label, known, tc.label, tc.known)
		}
	}
}

func TestMajorSubset(t *testing.T) {
	c := Default()
	major := c.Major()
	if len(major) != 8 {
		t.Fatalf("Major() = %d providers, want 8 (Table II)", len(major))
	}
	wantKeys := map[string]bool{
		"amazon": true, "azure": true, "cloudflare": true, "dnspod": true,
		"dnsmadeeasy": true, "dyn": true, "godaddy": true, "ultradns": true,
	}
	for _, p := range major {
		if !wantKeys[p.Key] {
			t.Errorf("unexpected major provider %s", p.Key)
		}
	}
}

func TestByKey(t *testing.T) {
	c := Default()
	p, ok := c.ByKey("cloudflare")
	if !ok || p.Display != "cloudflare.com" {
		t.Errorf("ByKey(cloudflare) = %v, %v", p, ok)
	}
	if _, ok := c.ByKey("nope"); ok {
		t.Error("ByKey(nope) succeeded")
	}
}

func TestCatalogKeysUnique(t *testing.T) {
	c := Default()
	seen := make(map[string]bool)
	for _, p := range c.Providers() {
		if seen[p.Key] {
			t.Errorf("duplicate provider key %s", p.Key)
		}
		seen[p.Key] = true
	}
}
