// Package providers identifies third-party DNS service providers from
// nameserver hostnames and SOA records, as § IV-B of the paper does: a
// regex for Amazon's generated nameserver names, suffix matching on
// well-known provider domains, and string matching on SOA MNAME/RNAME.
// It also implements the paper's grouping of related nameserver domains
// (AWS DNS, Azure DNS, Hostgator) used in Tables II and III.
package providers

import (
	"regexp"
	"strings"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// Provider is one DNS service provider.
type Provider struct {
	// Key is the stable identifier used in analyses ("amazon").
	Key string
	// Display is the label used in reports ("AWS DNS").
	Display string
	// Major marks the providers in the paper's Table II (providers
	// popular among the Alexa Top 1M).
	Major bool
	// domains are nameserver-domain suffixes owned by the provider.
	domains []dnsname.Name
	// pattern optionally matches full NS hostnames (Amazon's generated
	// names span hundreds of domains and need a regex).
	pattern *regexp.Regexp
}

// Matches reports whether the NS hostname belongs to this provider.
func (p *Provider) Matches(host dnsname.Name) bool {
	if p.pattern != nil && p.pattern.MatchString(string(host)) {
		return true
	}
	for _, d := range p.domains {
		if host.IsStrictSubdomainOf(d) {
			return true
		}
	}
	return false
}

// MatchesSOA reports whether the SOA's MNAME or RNAME points into the
// provider's domains.
func (p *Provider) MatchesSOA(soa dnswire.SOAData) bool {
	return p.Matches(soa.MName) || p.Matches(soa.RName)
}

// Catalog is an ordered provider list; earlier entries win ties.
type Catalog struct {
	providers []*Provider
	suffixes  *dnsname.SuffixSet
}

// amazonPattern matches Route 53's generated nameservers, e.g.
// ns-123.awsdns-45.com / .net / .org / .co.uk.
var amazonPattern = regexp.MustCompile(`^ns-\d+\.awsdns-\d+\.(com|net|org|co\.uk)\.$`)

// azurePattern matches Azure DNS nameservers, e.g. ns1-07.azure-dns.com.
var azurePattern = regexp.MustCompile(`^ns\d-\d+\.azure-dns\.(com|net|org|info)\.$`)

func names(raw ...string) []dnsname.Name {
	out := make([]dnsname.Name, len(raw))
	for i, r := range raw {
		out[i] = dnsname.MustParse(r)
	}
	return out
}

// Default returns the study's provider catalog: the major providers of
// Table II, the additional top-by-country providers of Table III, and the
// country-local providers called out in § IV-A (gov.cn's hichina,
// xincache, dns-diy).
func Default() *Catalog {
	return &Catalog{
		providers: []*Provider{
			{Key: "amazon", Display: "AWS DNS", Major: true, pattern: amazonPattern,
				domains: names("awsdns-hostmaster.amazon.com")},
			{Key: "azure", Display: "Azure DNS", Major: true, pattern: azurePattern,
				domains: names("azure-dns.com", "azure-dns.net", "azure-dns.org", "azure-dns.info")},
			{Key: "cloudflare", Display: "cloudflare.com", Major: true,
				domains: names("cloudflare.com")},
			{Key: "dnspod", Display: "DNSPod", Major: true,
				domains: names("dnspod.net", "dnspod.com")},
			{Key: "dnsmadeeasy", Display: "DNSMadeEasy", Major: true,
				domains: names("dnsmadeeasy.com")},
			{Key: "dyn", Display: "Dyn", Major: true,
				domains: names("dynect.net", "dyn.com")},
			{Key: "godaddy", Display: "domaincontrol.com", Major: true,
				domains: names("domaincontrol.com")},
			{Key: "ultradns", Display: "UltraDNS", Major: true,
				domains: names("ultradns.net", "ultradns.org", "ultradns.info", "ultradns.biz")},

			{Key: "hostgator", Display: "Hostgator",
				domains: names("hostgator.com", "hostgator.com.br", "hostgator.mx")},
			{Key: "websitewelcome", Display: "websitewelcome.com",
				domains: names("websitewelcome.com")},
			{Key: "bluehost", Display: "bluehost.com", domains: names("bluehost.com")},
			{Key: "dreamhost", Display: "dreamhost.com", domains: names("dreamhost.com")},
			{Key: "zoneedit", Display: "zoneedit.com", domains: names("zoneedit.com")},
			{Key: "ixwebhosting", Display: "ixwebhosting.com", domains: names("ixwebhosting.com")},
			{Key: "hostmonster", Display: "hostmonster.com", domains: names("hostmonster.com")},
			{Key: "everydns", Display: "everydns.net", domains: names("everydns.net")},
			{Key: "pipedns", Display: "pipedns.com", domains: names("pipedns.com")},
			{Key: "stabletransit", Display: "stabletransit.com", domains: names("stabletransit.com")},
			{Key: "digitalocean", Display: "digitalocean.com", domains: names("digitalocean.com")},
			{Key: "microsoftonline", Display: "microsoftonline.com", domains: names("microsoftonline.com")},
			{Key: "wixdns", Display: "wixdns.net", domains: names("wixdns.net")},
			{Key: "cloudns", Display: "cloudns.net", domains: names("cloudns.net")},

			{Key: "hichina", Display: "hichina.com", domains: names("hichina.com")},
			{Key: "xincache", Display: "xincache.com", domains: names("xincache.com", "xincache.cn")},
			{Key: "dnsdiy", Display: "dns-diy.com", domains: names("dns-diy.com", "dns-diy.net")},

			{Key: "ovh", Display: "ovh.net", domains: names("ovh.net")},
			{Key: "gandi", Display: "gandi.net", domains: names("gandi.net")},
			{Key: "he", Display: "he.net", domains: names("he.net")},
			{Key: "nsone", Display: "nsone.net", domains: names("nsone.net")},
			{Key: "akamai", Display: "akam.net", domains: names("akam.net")},
			{Key: "worldnic", Display: "worldnic.com", domains: names("worldnic.com")},
			{Key: "uidns", Display: "ui-dns.com", domains: names("ui-dns.com", "ui-dns.org")},
		},
		suffixes: dnsname.NewSuffixSet(
			"com", "net", "org", "info", "biz",
			"com.br", "net.br", "com.mx", "com.tr", "co.uk", "org.uk",
			"com.au", "net.au", "co.in", "net.in", "com.cn", "net.cn",
			"com.ua", "com.ar", "co.th", "in.th", "co.za", "com.sg",
		),
	}
}

// Providers returns the catalog's providers in order.
func (c *Catalog) Providers() []*Provider {
	return c.providers
}

// Major returns the Table II providers.
func (c *Catalog) Major() []*Provider {
	var out []*Provider
	for _, p := range c.providers {
		if p.Major {
			out = append(out, p)
		}
	}
	return out
}

// ByKey returns the provider with the given key.
func (c *Catalog) ByKey(key string) (*Provider, bool) {
	for _, p := range c.providers {
		if p.Key == key {
			return p, true
		}
	}
	return nil, false
}

// Identify returns the provider owning the NS hostname, if known.
func (c *Catalog) Identify(host dnsname.Name) (*Provider, bool) {
	for _, p := range c.providers {
		if p.Matches(host) {
			return p, true
		}
	}
	return nil, false
}

// IdentifySOA returns the provider indicated by an SOA's MNAME/RNAME —
// the fallback signal the paper uses when the NS hostname itself is a
// vanity name.
func (c *Catalog) IdentifySOA(soa dnswire.SOAData) (*Provider, bool) {
	for _, p := range c.providers {
		if p.MatchesSOA(soa) {
			return p, true
		}
	}
	return nil, false
}

// GroupLabel returns the paper's Table III row label for a nameserver
// hostname: known grouped providers (AWS, Azure, Hostgator) map to their
// group label, other known providers to their display name, and unknown
// hosts to the registered domain of the hostname. The final return value
// reports whether the host matched a known provider.
func (c *Catalog) GroupLabel(host dnsname.Name) (string, bool) {
	if p, ok := c.Identify(host); ok {
		return p.Display, true
	}
	if reg, ok := c.suffixes.RegisteredDomain(host); ok {
		return strings.TrimSuffix(reg.String(), "."), false
	}
	return strings.TrimSuffix(host.String(), "."), false
}
