package zone

import (
	"net/netip"
	"testing"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

func a(addr string) dnswire.AData {
	return dnswire.AData{Addr: netip.MustParseAddr(addr)}
}

// buildParentZone creates a gov.br-style parent zone with one working
// delegation (child "city") including glue, and apex records.
func buildParentZone(t *testing.T) *Zone {
	t.Helper()
	z := New("gov.br.")
	records := []dnswire.RR{
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.SOAData{
			MName: "ns1.gov.br.", RName: "hostmaster.gov.br.", Serial: 1,
			Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300}},
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns1.gov.br."}},
		{Name: "gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns2.gov.br."}},
		{Name: "ns1.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: a("198.51.100.1")},
		{Name: "ns2.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: a("198.51.100.2")},
		{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns1.city.gov.br."}},
		{Name: "city.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: dnswire.NSData{Host: "ns2.city.gov.br."}},
		{Name: "ns1.city.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: a("203.0.113.1")},
		{Name: "ns2.city.gov.br.", Class: dnswire.ClassIN, TTL: 3600, Data: a("203.0.113.2")},
		{Name: "www.gov.br.", Class: dnswire.ClassIN, TTL: 300, Data: a("192.0.2.80")},
	}
	for _, rr := range records {
		if err := z.Add(rr); err != nil {
			t.Fatalf("Add(%v): %v", rr, err)
		}
	}
	return z
}

func TestAddRejectsOutOfZone(t *testing.T) {
	z := New("gov.br.")
	err := z.Add(dnswire.RR{Name: "gov.cn.", Class: dnswire.ClassIN, Data: a("192.0.2.1")})
	if err == nil {
		t.Fatal("Add accepted an out-of-zone record")
	}
}

func TestAddDeduplicates(t *testing.T) {
	z := New("gov.br.")
	rr := dnswire.RR{Name: "www.gov.br.", Class: dnswire.ClassIN, TTL: 60, Data: a("192.0.2.1")}
	if err := z.Add(rr); err != nil {
		t.Fatal(err)
	}
	if err := z.Add(rr); err != nil {
		t.Fatal(err)
	}
	if got := len(z.Lookup("www.gov.br.", dnswire.TypeA)); got != 1 {
		t.Errorf("duplicate Add produced %d records", got)
	}
}

func TestAuthoritativeAnswer(t *testing.T) {
	z := buildParentZone(t)
	ans := z.Authoritative("www.gov.br.", dnswire.TypeA)
	if ans.Kind != KindAnswer {
		t.Fatalf("Kind = %v, want KindAnswer", ans.Kind)
	}
	if len(ans.Records) != 1 {
		t.Fatalf("got %d answers", len(ans.Records))
	}
}

func TestAuthoritativeApexNS(t *testing.T) {
	z := buildParentZone(t)
	ans := z.Authoritative("gov.br.", dnswire.TypeNS)
	if ans.Kind != KindAnswer {
		t.Fatalf("Kind = %v, want KindAnswer", ans.Kind)
	}
	if len(ans.Records) != 2 {
		t.Errorf("apex NS count = %d, want 2", len(ans.Records))
	}
	if len(ans.Additional) != 2 {
		t.Errorf("additional glue count = %d, want 2", len(ans.Additional))
	}
}

func TestAuthoritativeReferral(t *testing.T) {
	z := buildParentZone(t)
	for _, qname := range []dnsname.Name{"city.gov.br.", "www.city.gov.br.", "deep.a.city.gov.br."} {
		ans := z.Authoritative(qname, dnswire.TypeNS)
		if ans.Kind != KindReferral {
			t.Errorf("Authoritative(%q): Kind = %v, want KindReferral", qname, ans.Kind)
			continue
		}
		if len(ans.Authority) != 2 {
			t.Errorf("Authoritative(%q): %d NS in authority, want 2", qname, len(ans.Authority))
		}
		if len(ans.Additional) != 2 {
			t.Errorf("Authoritative(%q): %d glue records, want 2", qname, len(ans.Additional))
		}
	}
}

func TestAuthoritativeNXDomain(t *testing.T) {
	z := buildParentZone(t)
	ans := z.Authoritative("missing.gov.br.", dnswire.TypeA)
	if ans.Kind != KindNXDomain {
		t.Fatalf("Kind = %v, want KindNXDomain", ans.Kind)
	}
	if len(ans.Authority) != 1 || ans.Authority[0].Type() != dnswire.TypeSOA {
		t.Error("NXDOMAIN must carry the SOA in authority")
	}
}

func TestAuthoritativeNoData(t *testing.T) {
	z := buildParentZone(t)
	ans := z.Authoritative("www.gov.br.", dnswire.TypeTXT)
	if ans.Kind != KindNoData {
		t.Fatalf("Kind = %v, want KindNoData", ans.Kind)
	}
}

func TestAuthoritativeEmptyNonTerminal(t *testing.T) {
	z := New("gov.br.")
	z.MustAdd(dnswire.RR{Name: "gov.br.", Class: dnswire.ClassIN, Data: dnswire.SOAData{MName: "ns.gov.br.", RName: "h.gov.br."}})
	z.MustAdd(dnswire.RR{Name: "a.b.gov.br.", Class: dnswire.ClassIN, Data: a("192.0.2.9")})
	// "b.gov.br." has no records but has children: NODATA, not NXDOMAIN.
	ans := z.Authoritative("b.gov.br.", dnswire.TypeA)
	if ans.Kind != KindNoData {
		t.Fatalf("empty non-terminal: Kind = %v, want KindNoData", ans.Kind)
	}
}

func TestAuthoritativeCNAME(t *testing.T) {
	z := buildParentZone(t)
	z.MustAdd(dnswire.RR{Name: "portal.gov.br.", Class: dnswire.ClassIN, TTL: 60,
		Data: dnswire.CNAMEData{Target: "www.gov.br."}})
	ans := z.Authoritative("portal.gov.br.", dnswire.TypeA)
	if ans.Kind != KindAnswer {
		t.Fatalf("Kind = %v, want KindAnswer (CNAME)", ans.Kind)
	}
	if ans.Records[0].Type() != dnswire.TypeCNAME {
		t.Errorf("answer type = %v, want CNAME", ans.Records[0].Type())
	}
}

func TestAuthoritativeOutOfZone(t *testing.T) {
	z := buildParentZone(t)
	ans := z.Authoritative("gov.cn.", dnswire.TypeNS)
	if ans.Kind != KindNXDomain {
		t.Fatalf("out-of-zone lookup Kind = %v, want KindNXDomain", ans.Kind)
	}
}

func TestRemove(t *testing.T) {
	z := buildParentZone(t)
	if n := z.Remove("city.gov.br.", dnswire.TypeNS); n != 2 {
		t.Fatalf("Remove = %d, want 2", n)
	}
	ans := z.Authoritative("city.gov.br.", dnswire.TypeNS)
	if ans.Kind == KindReferral {
		t.Error("delegation survived Remove")
	}
	if n := z.Remove("nonexistent.gov.br.", dnswire.TypeA); n != 0 {
		t.Errorf("Remove(nonexistent) = %d, want 0", n)
	}
}

func TestValidate(t *testing.T) {
	z := buildParentZone(t)
	if errs := z.Validate(); len(errs) != 0 {
		t.Fatalf("valid zone reported errors: %v", errs)
	}
	// Remove glue: validation must flag the in-zone NS host without an A.
	z.Remove("ns1.city.gov.br.", dnswire.TypeA)
	if errs := z.Validate(); len(errs) == 0 {
		t.Error("Validate missed missing glue")
	}
	empty := New("gov.xx.")
	if errs := empty.Validate(); len(errs) < 2 {
		t.Errorf("empty zone: %d errors, want >=2 (no SOA, no NS)", len(errs))
	}
}

func TestRecordsDeterministicOrder(t *testing.T) {
	z1 := buildParentZone(t)
	z2 := buildParentZone(t)
	r1, r2 := z1.Records(), z2.Records()
	if len(r1) != len(r2) || len(r1) != z1.Len() {
		t.Fatalf("record counts differ: %d, %d, Len=%d", len(r1), len(r2), z1.Len())
	}
	for i := range r1 {
		if !r1[i].Equal(r2[i]) {
			t.Fatalf("order differs at %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestDelegations(t *testing.T) {
	z := buildParentZone(t)
	cuts := z.Delegations()
	if len(cuts) != 1 || cuts[0] != "city.gov.br." {
		t.Errorf("Delegations = %v, want [city.gov.br.]", cuts)
	}
}

func TestWildcardSynthesis(t *testing.T) {
	z := New("gov.br.")
	z.MustAdd(dnswire.RR{Name: "gov.br.", Class: dnswire.ClassIN, Data: dnswire.SOAData{
		MName: "ns1.gov.br.", RName: "h.gov.br."}})
	z.MustAdd(dnswire.RR{Name: "*.apps.gov.br.", Class: dnswire.ClassIN, TTL: 300,
		Data: a("192.0.2.50")})
	z.MustAdd(dnswire.RR{Name: "real.apps.gov.br.", Class: dnswire.ClassIN, TTL: 300,
		Data: a("192.0.2.51")})

	// Synthesized answer with the query name as owner.
	ans := z.Authoritative("anything.apps.gov.br.", dnswire.TypeA)
	if ans.Kind != KindAnswer {
		t.Fatalf("Kind = %v, want KindAnswer", ans.Kind)
	}
	if ans.Records[0].Name != "anything.apps.gov.br." {
		t.Errorf("owner = %s, want the query name", ans.Records[0].Name)
	}
	if ans.Records[0].Data.(dnswire.AData).Addr != netip.MustParseAddr("192.0.2.50") {
		t.Errorf("address = %v", ans.Records[0].Data)
	}

	// Existing names win over the wildcard.
	ans = z.Authoritative("real.apps.gov.br.", dnswire.TypeA)
	if ans.Records[0].Data.(dnswire.AData).Addr != netip.MustParseAddr("192.0.2.51") {
		t.Errorf("existing name shadowed by wildcard: %v", ans.Records[0])
	}

	// A wildcard without the queried type yields NODATA.
	ans = z.Authoritative("anything.apps.gov.br.", dnswire.TypeTXT)
	if ans.Kind != KindNoData {
		t.Errorf("Kind = %v, want KindNoData", ans.Kind)
	}

	// Names outside the wildcard's branch still get NXDOMAIN.
	ans = z.Authoritative("missing.other.gov.br.", dnswire.TypeA)
	if ans.Kind != KindNXDomain {
		t.Errorf("Kind = %v, want KindNXDomain", ans.Kind)
	}
}

func TestWildcardDeepMatch(t *testing.T) {
	z := New("gov.br.")
	z.MustAdd(dnswire.RR{Name: "gov.br.", Class: dnswire.ClassIN, Data: dnswire.SOAData{
		MName: "ns1.gov.br.", RName: "h.gov.br."}})
	z.MustAdd(dnswire.RR{Name: "*.gov.br.", Class: dnswire.ClassIN, TTL: 300,
		Data: a("192.0.2.60")})
	// A multi-label miss under the apex matches *.gov.br per RFC 1034.
	ans := z.Authoritative("a.b.c.gov.br.", dnswire.TypeA)
	if ans.Kind != KindAnswer {
		t.Fatalf("Kind = %v, want KindAnswer via wildcard", ans.Kind)
	}
	if ans.Records[0].Name != "a.b.c.gov.br." {
		t.Errorf("owner = %s", ans.Records[0].Name)
	}
}
