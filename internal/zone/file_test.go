package zone

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"govdns/internal/dnswire"
)

const sampleZoneFile = `
$ORIGIN gov.br.
$TTL 7200
@	3600	IN	SOA	ns1 hostmaster (
			2021040100 ; serial
			7200       ; refresh
			3600       ; retry
			1209600    ; expire
			300 )      ; minimum
@		IN	NS	ns1
@		IN	NS	ns2.gov.br.
ns1		IN	A	198.51.100.1
ns2		IN	A	198.51.100.2
www	300	IN	A	192.0.2.80
www	300	IN	AAAA	2001:db8::80
city		IN	NS	ns1.city
city		IN	NS	ns2.city.gov.br.
ns1.city	IN	A	203.0.113.1
ns2.city	IN	A	203.0.113.2
mail		IN	MX	10 mx1.gov.br.
@		IN	TXT	"v=spf1 -all"
alias		IN	CNAME	www
`

func TestParseFileBasics(t *testing.T) {
	z, err := ParseFile(strings.NewReader(sampleZoneFile), "gov.br.")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	if z.Origin() != "gov.br." {
		t.Errorf("Origin = %q", z.Origin())
	}
	soa, err := z.SOA()
	if err != nil {
		t.Fatalf("SOA: %v", err)
	}
	soaData, ok := soa.Data.(dnswire.SOAData)
	if !ok {
		t.Fatalf("SOA data type %T", soa.Data)
	}
	if soaData.Serial != 2021040100 || soaData.MName != "ns1.gov.br." {
		t.Errorf("SOA = %+v", soaData)
	}
	if got := len(z.Lookup("gov.br.", dnswire.TypeNS)); got != 2 {
		t.Errorf("apex NS count = %d, want 2", got)
	}
	// Relative vs absolute names must resolve identically.
	if got := len(z.Lookup("city.gov.br.", dnswire.TypeNS)); got != 2 {
		t.Errorf("city NS count = %d, want 2", got)
	}
	// Default TTL applies where no TTL is given.
	ns1 := z.Lookup("ns1.gov.br.", dnswire.TypeA)
	if len(ns1) != 1 || ns1[0].TTL != 7200 {
		t.Errorf("ns1 A = %+v, want TTL 7200", ns1)
	}
	// Explicit TTL wins.
	www := z.Lookup("www.gov.br.", dnswire.TypeA)
	if len(www) != 1 || www[0].TTL != 300 {
		t.Errorf("www A = %+v, want TTL 300", www)
	}
	if got := len(z.Lookup("www.gov.br.", dnswire.TypeAAAA)); got != 1 {
		t.Errorf("www AAAA count = %d", got)
	}
	mx := z.Lookup("mail.gov.br.", dnswire.TypeMX)
	if len(mx) != 1 {
		t.Fatalf("mail MX count = %d", len(mx))
	}
	if d := mx[0].Data.(dnswire.MXData); d.Preference != 10 || d.Exchange != "mx1.gov.br." {
		t.Errorf("MX = %+v", d)
	}
	txt := z.Lookup("gov.br.", dnswire.TypeTXT)
	if len(txt) != 1 || txt[0].Data.(dnswire.TXTData).Strings[0] != "v=spf1 -all" {
		t.Errorf("TXT = %+v", txt)
	}
	cname := z.Lookup("alias.gov.br.", dnswire.TypeCNAME)
	if len(cname) != 1 || cname[0].Data.(dnswire.CNAMEData).Target != "www.gov.br." {
		t.Errorf("CNAME = %+v", cname)
	}
}

func TestParseFileErrors(t *testing.T) {
	cases := []struct {
		name, input string
	}{
		{"unbalanced parens", "@ IN SOA a b ( 1 2 3 4 5"},
		{"unknown type", "@ IN WKS something"},
		{"bad A", "@ IN A not-an-ip"},
		{"bad AAAA", "@ IN AAAA 192.0.2.1"},
		{"missing type", "www IN"},
		{"empty", "; only a comment\n"},
		{"implicit owner first", "\tIN A 192.0.2.1"},
		{"bad origin", "$ORIGIN bad..name."},
		{"bad ttl directive", "$TTL abc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseFile(strings.NewReader(tc.input), "example."); err == nil {
				t.Errorf("ParseFile(%q) succeeded, want error", tc.input)
			}
		})
	}
}

func TestParseFileErrParseSentinel(t *testing.T) {
	_, err := ParseFile(strings.NewReader("@ IN A nope"), "example.")
	if !errors.Is(err, ErrParse) {
		t.Errorf("error %v is not ErrParse", err)
	}
}

func TestWriteFileRoundTrip(t *testing.T) {
	orig, err := ParseFile(strings.NewReader(sampleZoneFile), "gov.br.")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteFile(&buf, orig); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	reparsed, err := ParseFile(bytes.NewReader(buf.Bytes()), orig.Origin())
	if err != nil {
		t.Fatalf("re-ParseFile: %v\nserialized:\n%s", err, buf.String())
	}
	origRecords, newRecords := orig.Records(), reparsed.Records()
	if len(origRecords) != len(newRecords) {
		t.Fatalf("round trip changed record count: %d -> %d\n%s",
			len(origRecords), len(newRecords), buf.String())
	}
	for i := range origRecords {
		if !origRecords[i].Equal(newRecords[i]) {
			t.Errorf("record %d: %v != %v", i, origRecords[i], newRecords[i])
		}
	}
}

func TestParseFileQuotedSemicolon(t *testing.T) {
	input := "$ORIGIN example.\n@ IN TXT \"has ; semicolon\"\n"
	z, err := ParseFile(strings.NewReader(input), "example.")
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	txt := z.Lookup("example.", dnswire.TypeTXT)
	if len(txt) != 1 || txt[0].Data.(dnswire.TXTData).Strings[0] != "has ; semicolon" {
		t.Errorf("TXT = %+v", txt)
	}
}
