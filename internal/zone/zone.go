// Package zone implements the DNS zone data model: RRset storage with
// authoritative lookup semantics (answers, referrals with glue, NXDOMAIN,
// NODATA), plus a master-file parser and serialiser.
package zone

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// Zone errors.
var (
	// ErrNoSOA indicates a zone that is missing its SOA record.
	ErrNoSOA = errors.New("zone: missing SOA")
	// ErrOutOfZone indicates a record whose owner name lies outside the
	// zone's origin.
	ErrOutOfZone = errors.New("zone: record out of zone")
)

// rrKey identifies an RRset within a zone.
type rrKey struct {
	name  dnsname.Name
	rtype dnswire.Type
}

// Zone holds the authoritative data for one DNS zone. It is safe for
// concurrent reads after construction; Add and SetSOA must not race with
// lookups.
type Zone struct {
	origin dnsname.Name

	mu     sync.RWMutex
	sets   map[rrKey][]dnswire.RR
	names  map[dnsname.Name]bool // all owner names, for NXDOMAIN vs NODATA
	ents   map[dnsname.Name]bool // owner names plus empty non-terminals
	delegs map[dnsname.Name]bool // cut points (names with NS below apex)
}

// New creates an empty zone rooted at origin.
func New(origin dnsname.Name) *Zone {
	return &Zone{
		origin: origin,
		sets:   make(map[rrKey][]dnswire.RR),
		names:  make(map[dnsname.Name]bool),
		ents:   make(map[dnsname.Name]bool),
		delegs: make(map[dnsname.Name]bool),
	}
}

// Origin returns the zone apex name.
func (z *Zone) Origin() dnsname.Name { return z.origin }

// Add inserts rr into the zone. Duplicate records (same name/type/RDATA)
// are ignored. Records outside the zone are rejected.
func (z *Zone) Add(rr dnswire.RR) error {
	if !rr.Name.IsSubdomainOf(z.origin) {
		return fmt.Errorf("%w: %q not under %q", ErrOutOfZone, rr.Name, z.origin)
	}
	if rr.Data == nil {
		return fmt.Errorf("zone: record %q has nil RDATA", rr.Name)
	}
	z.mu.Lock()
	defer z.mu.Unlock()

	key := rrKey{name: rr.Name, rtype: rr.Type()}
	for _, existing := range z.sets[key] {
		if existing.Equal(rr) {
			return nil
		}
	}
	z.sets[key] = append(z.sets[key], rr)
	z.names[rr.Name] = true
	// Record the owner and every empty non-terminal above it, so
	// NXDOMAIN-vs-NODATA decisions are O(labels).
	for cur := rr.Name; cur.IsSubdomainOf(z.origin); cur = cur.Parent() {
		z.ents[cur] = true
		if cur == z.origin {
			break
		}
	}
	if rr.Type() == dnswire.TypeNS && rr.Name != z.origin {
		z.delegs[rr.Name] = true
	}
	return nil
}

// MustAdd is Add that panics on error; for use by generators with
// known-good data.
func (z *Zone) MustAdd(rr dnswire.RR) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// Remove deletes all records matching name and type. It reports how many
// records were removed.
func (z *Zone) Remove(name dnsname.Name, rtype dnswire.Type) int {
	z.mu.Lock()
	defer z.mu.Unlock()
	key := rrKey{name: name, rtype: rtype}
	n := len(z.sets[key])
	delete(z.sets, key)
	if rtype == dnswire.TypeNS {
		delete(z.delegs, name)
	}
	// Drop the owner name if nothing remains at it.
	remaining := false
	for k := range z.sets {
		if k.name == name {
			remaining = true
			break
		}
	}
	if !remaining {
		delete(z.names, name)
	}
	return n
}

// Lookup returns the RRset for (name, rtype), or nil.
func (z *Zone) Lookup(name dnsname.Name, rtype dnswire.Type) []dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	set := z.sets[rrKey{name: name, rtype: rtype}]
	if len(set) == 0 {
		return nil
	}
	out := make([]dnswire.RR, len(set))
	copy(out, set)
	return out
}

// SOA returns the zone's SOA record, or an error if absent.
func (z *Zone) SOA() (dnswire.RR, error) {
	set := z.Lookup(z.origin, dnswire.TypeSOA)
	if len(set) == 0 {
		return dnswire.RR{}, fmt.Errorf("%w at %q", ErrNoSOA, z.origin)
	}
	return set[0], nil
}

// HasName reports whether any record exists at name.
func (z *Zone) HasName(name dnsname.Name) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.names[name]
}

// delegationFor returns the deepest cut point at or above name (strictly
// below the apex), if any. A query for a name at or under a cut must be
// answered with a referral.
func (z *Zone) delegationFor(name dnsname.Name) (dnsname.Name, bool) {
	z.mu.RLock()
	defer z.mu.RUnlock()
	// Walk from name upward until (and excluding) the apex.
	for cur := name; cur.IsSubdomainOf(z.origin) && cur != z.origin; cur = cur.Parent() {
		if z.delegs[cur] {
			return cur, true
		}
	}
	return "", false
}

// AnswerKind classifies the outcome of an authoritative lookup.
type AnswerKind int

// Lookup outcomes.
const (
	// KindAnswer is an authoritative answer with records.
	KindAnswer AnswerKind = iota + 1
	// KindReferral is a delegation to a child zone.
	KindReferral
	// KindNoData means the name exists but has no records of the type.
	KindNoData
	// KindNXDomain means the name does not exist in the zone.
	KindNXDomain
)

// Answer is the result of Zone.Authoritative.
type Answer struct {
	Kind       AnswerKind
	Records    []dnswire.RR // answer section
	Authority  []dnswire.RR // NS records for referrals, SOA for negatives
	Additional []dnswire.RR // glue addresses
}

// Authoritative performs an RFC 1034 §4.3.2-style lookup of (name, rtype)
// in the zone and classifies the result. CNAMEs at the query name are
// returned as answers (the measurement client does not chase CNAMEs for NS
// lookups, matching the paper's pipeline).
func (z *Zone) Authoritative(name dnsname.Name, rtype dnswire.Type) Answer {
	if !name.IsSubdomainOf(z.origin) {
		return Answer{Kind: KindNXDomain, Authority: z.soaSet()}
	}

	// Below or at a zone cut: referral, except that an explicit NS query
	// for the cut itself is also answered from the parent side as a
	// referral (the parent is not authoritative for the child apex).
	if cut, ok := z.delegationFor(name); ok {
		nsSet := z.Lookup(cut, dnswire.TypeNS)
		return Answer{
			Kind:       KindReferral,
			Authority:  nsSet,
			Additional: z.glueFor(nsSet),
		}
	}

	if set := z.Lookup(name, rtype); len(set) > 0 {
		return Answer{Kind: KindAnswer, Records: set, Additional: z.additionalFor(set)}
	}
	// CNAME redirection at the owner name.
	if cname := z.Lookup(name, dnswire.TypeCNAME); len(cname) > 0 && rtype != dnswire.TypeCNAME {
		return Answer{Kind: KindAnswer, Records: cname}
	}
	if z.hasNameOrChildren(name) {
		return Answer{Kind: KindNoData, Authority: z.soaSet()}
	}
	// RFC 1034 §4.3.3 wildcard synthesis: the closest enclosing "*"
	// owner answers for names that would otherwise not exist.
	if ans, ok := z.wildcard(name, rtype); ok {
		return ans
	}
	return Answer{Kind: KindNXDomain, Authority: z.soaSet()}
}

// wildcard searches for a matching "*" owner at each ancestor of name
// (excluding names that exist — the caller established NXDOMAIN) and
// synthesizes records with the query name as owner.
func (z *Zone) wildcard(name dnsname.Name, rtype dnswire.Type) (Answer, bool) {
	for cur := name.Parent(); cur.IsSubdomainOf(z.origin); cur = cur.Parent() {
		star, err := cur.Prepend("*")
		if err != nil {
			break
		}
		set := z.Lookup(star, rtype)
		if len(set) == 0 {
			if cname := z.Lookup(star, dnswire.TypeCNAME); len(cname) > 0 && rtype != dnswire.TypeCNAME {
				set = cname
			}
		}
		if len(set) > 0 {
			synthesized := make([]dnswire.RR, len(set))
			for i, rr := range set {
				rr.Name = name
				synthesized[i] = rr
			}
			return Answer{Kind: KindAnswer, Records: synthesized}, true
		}
		// A wildcard exists but lacks the type: NODATA per the RFC.
		if z.HasName(star) {
			return Answer{Kind: KindNoData, Authority: z.soaSet()}, true
		}
		if cur == z.origin {
			break
		}
	}
	return Answer{}, false
}

// hasNameOrChildren reports whether name exists as an owner name or as an
// empty non-terminal (an ancestor of an existing name). The ents index is
// not rebuilt by Remove, so a fully-removed subtree may answer NODATA
// rather than NXDOMAIN — the conservative direction for a nameserver.
func (z *Zone) hasNameOrChildren(name dnsname.Name) bool {
	z.mu.RLock()
	defer z.mu.RUnlock()
	return z.ents[name]
}

// glueFor returns in-zone A records for the hosts of the given NS records.
func (z *Zone) glueFor(nsSet []dnswire.RR) []dnswire.RR {
	var glue []dnswire.RR
	for _, rr := range nsSet {
		ns, ok := rr.Data.(dnswire.NSData)
		if !ok {
			continue
		}
		glue = append(glue, z.Lookup(ns.Host, dnswire.TypeA)...)
	}
	return glue
}

// additionalFor returns address records helpful for the given answer set
// (A records for NS/MX targets).
func (z *Zone) additionalFor(answers []dnswire.RR) []dnswire.RR {
	var extra []dnswire.RR
	for _, rr := range answers {
		switch d := rr.Data.(type) {
		case dnswire.NSData:
			extra = append(extra, z.Lookup(d.Host, dnswire.TypeA)...)
		case dnswire.MXData:
			extra = append(extra, z.Lookup(d.Exchange, dnswire.TypeA)...)
		}
	}
	return extra
}

func (z *Zone) soaSet() []dnswire.RR {
	return z.Lookup(z.origin, dnswire.TypeSOA)
}

// Records returns every record in the zone in deterministic order:
// canonical name order, then type, then presentation form of RDATA.
func (z *Zone) Records() []dnswire.RR {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]dnswire.RR, 0, len(z.sets)*2)
	for _, set := range z.sets {
		out = append(out, set...)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := dnsname.Compare(out[i].Name, out[j].Name); c != 0 {
			return c < 0
		}
		if out[i].Type() != out[j].Type() {
			return out[i].Type() < out[j].Type()
		}
		return out[i].Data.String() < out[j].Data.String()
	})
	return out
}

// Len returns the total number of records in the zone.
func (z *Zone) Len() int {
	z.mu.RLock()
	defer z.mu.RUnlock()
	n := 0
	for _, set := range z.sets {
		n += len(set)
	}
	return n
}

// Delegations returns the zone's cut points in canonical order.
func (z *Zone) Delegations() []dnsname.Name {
	z.mu.RLock()
	defer z.mu.RUnlock()
	out := make([]dnsname.Name, 0, len(z.delegs))
	for n := range z.delegs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return dnsname.Compare(out[i], out[j]) < 0 })
	return out
}

// Validate performs basic zone sanity checks: an SOA must exist at the
// apex, NS records must exist at the apex, and every in-zone NS host below
// a cut should have glue. It returns all problems found.
func (z *Zone) Validate() []error {
	var errs []error
	if _, err := z.SOA(); err != nil {
		errs = append(errs, err)
	}
	if len(z.Lookup(z.origin, dnswire.TypeNS)) == 0 {
		errs = append(errs, fmt.Errorf("zone %q: no NS records at apex", z.origin))
	}
	for _, cut := range z.Delegations() {
		for _, rr := range z.Lookup(cut, dnswire.TypeNS) {
			ns, ok := rr.Data.(dnswire.NSData)
			if !ok {
				continue
			}
			if ns.Host.IsSubdomainOf(cut) && len(z.Lookup(ns.Host, dnswire.TypeA)) == 0 {
				errs = append(errs, fmt.Errorf("zone %q: delegation %q needs glue for %q",
					z.origin, cut, ns.Host))
			}
		}
	}
	return errs
}
