package zone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"

	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
)

// ErrParse indicates a master-file syntax error.
var ErrParse = errors.New("zone: parse error")

// ParseFile reads a zone in RFC 1035 master-file format. Supported
// features: $ORIGIN and $TTL directives, "@" for the origin, relative
// names, per-record TTLs, optional class, comments, and the record types
// the codec understands. Multi-line parentheses are supported for SOA.
func ParseFile(r io.Reader, defaultOrigin dnsname.Name) (*Zone, error) {
	p := &fileParser{
		origin:     defaultOrigin,
		defaultTTL: 3600,
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 64*1024), 1024*1024)

	lineNo := 0
	var pending strings.Builder
	depth := 0
	for scanner.Scan() {
		lineNo++
		line := stripComment(scanner.Text())
		depth += strings.Count(line, "(") - strings.Count(line, ")")
		if depth < 0 {
			return nil, fmt.Errorf("%w: line %d: unbalanced parentheses", ErrParse, lineNo)
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		if depth > 0 {
			continue
		}
		full := strings.NewReplacer("(", " ", ")", " ").Replace(pending.String())
		pending.Reset()
		if strings.TrimSpace(full) == "" {
			continue
		}
		if err := p.line(full); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("zone: reading input: %w", err)
	}
	if depth != 0 {
		return nil, fmt.Errorf("%w: unterminated parentheses", ErrParse)
	}
	if p.zone == nil {
		return nil, fmt.Errorf("%w: no records", ErrParse)
	}
	return p.zone, nil
}

func stripComment(line string) string {
	inQuote := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return line[:i]
			}
		}
	}
	return line
}

type fileParser struct {
	origin     dnsname.Name
	defaultTTL uint32
	lastOwner  dnsname.Name
	zone       *Zone
}

func (p *fileParser) line(s string) error {
	ownerIsImplicit := len(s) > 0 && (s[0] == ' ' || s[0] == '\t')
	fields := splitFields(s)
	if len(fields) == 0 {
		return nil
	}

	switch fields[0] {
	case "$ORIGIN":
		if len(fields) != 2 {
			return errors.New("$ORIGIN needs one argument")
		}
		origin, err := dnsname.Parse(fields[1])
		if err != nil {
			return err
		}
		p.origin = origin
		return nil
	case "$TTL":
		if len(fields) != 2 {
			return errors.New("$TTL needs one argument")
		}
		ttl, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return fmt.Errorf("bad $TTL: %v", err)
		}
		p.defaultTTL = uint32(ttl)
		return nil
	}

	var owner dnsname.Name
	var err error
	if ownerIsImplicit {
		if p.lastOwner == "" {
			return errors.New("record with implicit owner before any owner")
		}
		owner = p.lastOwner
	} else {
		owner, err = p.resolveName(fields[0])
		if err != nil {
			return err
		}
		fields = fields[1:]
	}
	p.lastOwner = owner

	ttl := p.defaultTTL
	// Optional TTL and class may appear in either order before the type.
	for len(fields) > 0 {
		if v, err := strconv.ParseUint(fields[0], 10, 32); err == nil {
			ttl = uint32(v)
			fields = fields[1:]
			continue
		}
		if fields[0] == "IN" || fields[0] == "CH" || fields[0] == "HS" {
			fields = fields[1:]
			continue
		}
		break
	}
	if len(fields) == 0 {
		return errors.New("record without type")
	}
	rtype, ok := dnswire.ParseType(fields[0])
	if !ok {
		return fmt.Errorf("unsupported record type %q", fields[0])
	}
	data, err := p.rdata(rtype, fields[1:])
	if err != nil {
		return err
	}
	if p.zone == nil {
		p.zone = New(p.origin)
	}
	return p.zone.Add(dnswire.RR{Name: owner, Class: dnswire.ClassIN, TTL: ttl, Data: data})
}

func (p *fileParser) rdata(rtype dnswire.Type, args []string) (dnswire.RData, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d fields, got %d", rtype, n, len(args))
		}
		return nil
	}
	switch rtype {
	case dnswire.TypeNS:
		if err := need(1); err != nil {
			return nil, err
		}
		host, err := p.resolveName(args[0])
		return dnswire.NSData{Host: host}, err
	case dnswire.TypeCNAME:
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := p.resolveName(args[0])
		return dnswire.CNAMEData{Target: target}, err
	case dnswire.TypePTR:
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := p.resolveName(args[0])
		return dnswire.PTRData{Target: target}, err
	case dnswire.TypeA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is4() {
			return nil, fmt.Errorf("bad A address %q", args[0])
		}
		return dnswire.AData{Addr: addr}, nil
	case dnswire.TypeAAAA:
		if err := need(1); err != nil {
			return nil, err
		}
		addr, err := netip.ParseAddr(args[0])
		if err != nil || !addr.Is6() || addr.Is4() {
			return nil, fmt.Errorf("bad AAAA address %q", args[0])
		}
		return dnswire.AAAAData{Addr: addr}, nil
	case dnswire.TypeMX:
		if err := need(2); err != nil {
			return nil, err
		}
		pref, err := strconv.ParseUint(args[0], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("bad MX preference %q", args[0])
		}
		exch, err := p.resolveName(args[1])
		return dnswire.MXData{Preference: uint16(pref), Exchange: exch}, err
	case dnswire.TypeTXT:
		if len(args) == 0 {
			return nil, errors.New("TXT needs at least one string")
		}
		strs := make([]string, len(args))
		for i, a := range args {
			strs[i] = strings.Trim(a, `"`)
		}
		return dnswire.TXTData{Strings: strs}, nil
	case dnswire.TypeSOA:
		if err := need(7); err != nil {
			return nil, err
		}
		mname, err := p.resolveName(args[0])
		if err != nil {
			return nil, err
		}
		rname, err := p.resolveName(args[1])
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseUint(args[2+i], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad SOA field %q", args[2+i])
			}
			vals[i] = uint32(v)
		}
		return dnswire.SOAData{
			MName: mname, RName: rname,
			Serial: vals[0], Refresh: vals[1], Retry: vals[2],
			Expire: vals[3], Minimum: vals[4],
		}, nil
	default:
		return nil, fmt.Errorf("unsupported record type %s", rtype)
	}
}

// resolveName interprets a master-file name token: "@" is the origin,
// names ending in "." are absolute, others are relative to the origin.
func (p *fileParser) resolveName(token string) (dnsname.Name, error) {
	switch {
	case token == "@":
		return p.origin, nil
	case strings.HasSuffix(token, "."):
		return dnsname.Parse(token)
	default:
		rel, err := dnsname.Parse(token)
		if err != nil {
			return "", err
		}
		if p.origin.IsRoot() {
			return rel, nil
		}
		abs, err := dnsname.Parse(strings.TrimSuffix(rel.String(), ".") + "." + p.origin.String())
		if err != nil {
			return "", fmt.Errorf("resolving %q against %q: %v", token, p.origin, err)
		}
		return abs, nil
	}
}

// splitFields splits on whitespace but keeps quoted strings intact.
func splitFields(s string) []string {
	var fields []string
	var cur strings.Builder
	inQuote := false
	flush := func() {
		if cur.Len() > 0 {
			fields = append(fields, cur.String())
			cur.Reset()
		}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case (c == ' ' || c == '\t') && !inQuote:
			flush()
		default:
			cur.WriteByte(c)
		}
	}
	flush()
	return fields
}

// WriteFile serialises z in master-file format, with $ORIGIN/$TTL
// directives and names relative to the origin where possible. The output
// round-trips through ParseFile.
func WriteFile(w io.Writer, z *Zone) error {
	records := z.Records()
	if _, err := fmt.Fprintf(w, "$ORIGIN %s\n$TTL 3600\n", z.Origin()); err != nil {
		return err
	}
	for _, rr := range records {
		owner, ok := dnsname.TrimOrigin(rr.Name, z.Origin())
		if !ok {
			owner = rr.Name.String()
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\tIN\t%s\t%s\n",
			owner, rr.TTL, rr.Type(), presentRData(rr.Data)); err != nil {
			return err
		}
	}
	return nil
}

// presentRData renders RDATA with absolute names so the output is
// origin-independent.
func presentRData(data dnswire.RData) string {
	return data.String()
}
