// Package miniworld builds a small, fully hand-crafted DNS universe used
// by tests and examples: a root, two TLDs, a government zone with children
// exhibiting each condition the study measures (healthy, partially lame,
// fully lame, single-NS, third-party hosted, parent/child inconsistent,
// and dangling delegations), and a third-party provider.
//
// The generated world (internal/worldgen) is statistical; this package is
// deterministic down to each record, which makes it the right substrate
// for behavioural tests.
package miniworld

import (
	"fmt"
	"net/netip"
	"sort"

	"govdns/internal/authserver"
	"govdns/internal/chaos"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/simnet"
	"govdns/internal/zone"
)

// Addresses of the fixture's servers. Exported so tests can assert
// against exact values.
var (
	RootAddr        = netip.MustParseAddr("1.0.0.1")
	TLDBrAddr       = netip.MustParseAddr("2.0.0.1")
	TLDComAddr      = netip.MustParseAddr("2.0.1.1")
	GovNS1Addr      = netip.MustParseAddr("3.0.0.1")
	GovNS2Addr      = netip.MustParseAddr("3.0.1.1")
	CityNS1Addr     = netip.MustParseAddr("4.0.0.1")
	CityNS2Addr     = netip.MustParseAddr("4.0.1.1")
	LameOKAddr      = netip.MustParseAddr("4.1.0.1")
	LameDeadAddr    = netip.MustParseAddr("4.1.1.1")
	DeadAddr        = netip.MustParseAddr("4.2.0.1")
	SingleAddr      = netip.MustParseAddr("4.3.0.1")
	ProviderNS1Addr = netip.MustParseAddr("5.0.0.1")
	ProviderNS2Addr = netip.MustParseAddr("5.0.1.1")
	IncNS1Addr      = netip.MustParseAddr("4.4.0.1")
	IncNS3Addr      = netip.MustParseAddr("4.4.1.1")
)

// World is the assembled fixture.
type World struct {
	Net   *simnet.Network
	Roots []netip.Addr
	// Servers indexes every authoritative server by hostname.
	Servers map[dnsname.Name]*authserver.Server

	// hostAddrs records every address a hostname was attached at, in
	// attachment order, so fault schedules can be keyed by server name.
	hostAddrs map[dnsname.Name][]netip.Addr
}

// rr builds an IN-class record.
func rr(name dnsname.Name, ttl uint32, data dnswire.RData) dnswire.RR {
	return dnswire.RR{Name: name, Class: dnswire.ClassIN, TTL: ttl, Data: data}
}

func soa(origin, mname dnsname.Name) dnswire.RR {
	return rr(origin, 3600, dnswire.SOAData{
		MName: mname, RName: origin.MustPrepend("hostmaster"),
		Serial: 2021040100, Refresh: 7200, Retry: 3600, Expire: 1209600, Minimum: 300,
	})
}

func ns(owner, host dnsname.Name) dnswire.RR { return rr(owner, 3600, dnswire.NSData{Host: host}) }

func a(owner dnsname.Name, addr netip.Addr) dnswire.RR {
	return rr(owner, 3600, dnswire.AData{Addr: addr})
}

// Build assembles the fixture network with a loss-free, zero-latency
// network.
func Build() *World {
	return BuildWithNetwork(simnet.Config{Seed: 1})
}

// BuildWithNetwork assembles the fixture over a network with the given
// characteristics (used by failure-injection tests).
func BuildWithNetwork(cfg simnet.Config) *World {
	w := &World{
		Net:       simnet.New(cfg),
		Roots:     []netip.Addr{RootAddr},
		Servers:   make(map[dnsname.Name]*authserver.Server),
		hostAddrs: make(map[dnsname.Name][]netip.Addr),
	}

	// --- Root zone ---
	root := zone.New(dnsname.Root)
	root.MustAdd(soa(dnsname.Root, "a.root-servers.net."))
	root.MustAdd(ns(dnsname.Root, "a.root-servers.net."))
	root.MustAdd(a("a.root-servers.net.", RootAddr))
	root.MustAdd(ns("br.", "a.dns.br."))
	root.MustAdd(a("a.dns.br.", TLDBrAddr))
	root.MustAdd(ns("com.", "a.gtld-servers.com."))
	root.MustAdd(a("a.gtld-servers.com.", TLDComAddr))
	w.serve("a.root-servers.net.", RootAddr, root)

	// --- br. TLD ---
	br := zone.New("br.")
	br.MustAdd(soa("br.", "a.dns.br."))
	br.MustAdd(ns("br.", "a.dns.br."))
	br.MustAdd(a("a.dns.br.", TLDBrAddr))
	br.MustAdd(ns("gov.br.", "ns1.gov.br."))
	br.MustAdd(ns("gov.br.", "ns2.gov.br."))
	br.MustAdd(a("ns1.gov.br.", GovNS1Addr))
	br.MustAdd(a("ns2.gov.br.", GovNS2Addr))
	w.serve("a.dns.br.", TLDBrAddr, br)

	// --- com. TLD ---
	com := zone.New("com.")
	com.MustAdd(soa("com.", "a.gtld-servers.com."))
	com.MustAdd(ns("com.", "a.gtld-servers.com."))
	com.MustAdd(a("a.gtld-servers.com.", TLDComAddr))
	com.MustAdd(ns("provider.com.", "ns1.provider.com."))
	com.MustAdd(ns("provider.com.", "ns2.provider.com."))
	com.MustAdd(a("ns1.provider.com.", ProviderNS1Addr))
	com.MustAdd(a("ns2.provider.com.", ProviderNS2Addr))
	// gone-provider.com is NOT delegated: queries yield NXDOMAIN, so
	// dangling.gov.br's delegation is hijackable.
	w.serve("a.gtld-servers.com.", TLDComAddr, com)

	// --- gov.br. parent zone ---
	gov := zone.New("gov.br.")
	gov.MustAdd(soa("gov.br.", "ns1.gov.br."))
	gov.MustAdd(ns("gov.br.", "ns1.gov.br."))
	gov.MustAdd(ns("gov.br.", "ns2.gov.br."))
	gov.MustAdd(a("ns1.gov.br.", GovNS1Addr))
	gov.MustAdd(a("ns2.gov.br.", GovNS2Addr))

	// healthy child: city.gov.br
	gov.MustAdd(ns("city.gov.br.", "ns1.city.gov.br."))
	gov.MustAdd(ns("city.gov.br.", "ns2.city.gov.br."))
	gov.MustAdd(a("ns1.city.gov.br.", CityNS1Addr))
	gov.MustAdd(a("ns2.city.gov.br.", CityNS2Addr))

	// partially lame child: lame.gov.br (ns2 dead)
	gov.MustAdd(ns("lame.gov.br.", "ns1.lame.gov.br."))
	gov.MustAdd(ns("lame.gov.br.", "ns2.lame.gov.br."))
	gov.MustAdd(a("ns1.lame.gov.br.", LameOKAddr))
	gov.MustAdd(a("ns2.lame.gov.br.", LameDeadAddr))

	// fully lame child: dead.gov.br
	gov.MustAdd(ns("dead.gov.br.", "ns1.dead.gov.br."))
	gov.MustAdd(a("ns1.dead.gov.br.", DeadAddr))

	// single-NS child: single.gov.br
	gov.MustAdd(ns("single.gov.br.", "ns1.single.gov.br."))
	gov.MustAdd(a("ns1.single.gov.br.", SingleAddr))

	// third-party hosted child: hosted.gov.br
	gov.MustAdd(ns("hosted.gov.br.", "ns1.provider.com."))
	gov.MustAdd(ns("hosted.gov.br.", "ns2.provider.com."))

	// inconsistent child: parent says ns1+ns2, child says ns1+ns3.
	gov.MustAdd(ns("inconsistent.gov.br.", "ns1.inconsistent.gov.br."))
	gov.MustAdd(ns("inconsistent.gov.br.", "ns2.inconsistent.gov.br."))
	gov.MustAdd(a("ns1.inconsistent.gov.br.", IncNS1Addr))
	gov.MustAdd(a("ns2.inconsistent.gov.br.", IncNS3Addr)) // ns2 resolves to ns3's host

	// dangling child: NS host under a domain that no longer exists.
	gov.MustAdd(ns("dangling.gov.br.", "ns.gone-provider.com."))

	// A CNAME'd nameserver alias, for resolver CNAME-chase tests.
	gov.MustAdd(rr("cname-ns.gov.br.", 3600, dnswire.CNAMEData{Target: "ns1.gov.br."}))

	w.serve("ns1.gov.br.", GovNS1Addr, gov)
	w.serve("ns2.gov.br.", GovNS2Addr, gov)

	// --- children ---
	city := childZone("city.gov.br.", map[dnsname.Name]netip.Addr{
		"ns1.city.gov.br.": CityNS1Addr,
		"ns2.city.gov.br.": CityNS2Addr,
	})
	w.serve("ns1.city.gov.br.", CityNS1Addr, city)
	w.serve("ns2.city.gov.br.", CityNS2Addr, city)

	lame := childZone("lame.gov.br.", map[dnsname.Name]netip.Addr{
		"ns1.lame.gov.br.": LameOKAddr,
		"ns2.lame.gov.br.": LameDeadAddr,
	})
	w.serve("ns1.lame.gov.br.", LameOKAddr, lame)
	deadNS := w.serve("ns2.lame.gov.br.", LameDeadAddr, lame)
	deadNS.SetBehavior(authserver.BehaviorUnresponsive)

	dead := childZone("dead.gov.br.", map[dnsname.Name]netip.Addr{
		"ns1.dead.gov.br.": DeadAddr,
	})
	deadSrv := w.serve("ns1.dead.gov.br.", DeadAddr, dead)
	deadSrv.SetBehavior(authserver.BehaviorUnresponsive)

	single := childZone("single.gov.br.", map[dnsname.Name]netip.Addr{
		"ns1.single.gov.br.": SingleAddr,
	})
	w.serve("ns1.single.gov.br.", SingleAddr, single)

	// hosted.gov.br lives on the provider's servers.
	hosted := zone.New("hosted.gov.br.")
	hosted.MustAdd(soa("hosted.gov.br.", "ns1.provider.com."))
	hosted.MustAdd(ns("hosted.gov.br.", "ns1.provider.com."))
	hosted.MustAdd(ns("hosted.gov.br.", "ns2.provider.com."))
	hosted.MustAdd(a("www.hosted.gov.br.", netip.MustParseAddr("192.0.2.10")))

	// provider.com zone plus the hosted customer zone on both servers.
	provider := zone.New("provider.com.")
	provider.MustAdd(soa("provider.com.", "ns1.provider.com."))
	provider.MustAdd(ns("provider.com.", "ns1.provider.com."))
	provider.MustAdd(ns("provider.com.", "ns2.provider.com."))
	provider.MustAdd(a("ns1.provider.com.", ProviderNS1Addr))
	provider.MustAdd(a("ns2.provider.com.", ProviderNS2Addr))
	p1 := w.serve("ns1.provider.com.", ProviderNS1Addr, provider)
	p1.AddZone(hosted)
	p2 := w.serve("ns2.provider.com.", ProviderNS2Addr, provider)
	p2.AddZone(hosted)

	// inconsistent.gov.br: the child's own NS set differs from the
	// parent's (ns1 + ns3 instead of ns1 + ns2).
	inc := zone.New("inconsistent.gov.br.")
	inc.MustAdd(soa("inconsistent.gov.br.", "ns1.inconsistent.gov.br."))
	inc.MustAdd(ns("inconsistent.gov.br.", "ns1.inconsistent.gov.br."))
	inc.MustAdd(ns("inconsistent.gov.br.", "ns3.inconsistent.gov.br."))
	inc.MustAdd(a("ns1.inconsistent.gov.br.", IncNS1Addr))
	inc.MustAdd(a("ns3.inconsistent.gov.br.", IncNS3Addr))
	w.serve("ns1.inconsistent.gov.br.", IncNS1Addr, inc)
	w.serve("ns3.inconsistent.gov.br.", IncNS3Addr, inc)

	return w
}

// childZone builds a simple, healthy child zone with the given NS hosts.
func childZone(origin dnsname.Name, hosts map[dnsname.Name]netip.Addr) *zone.Zone {
	z := zone.New(origin)
	var first dnsname.Name
	for h := range hosts {
		if first == "" || dnsname.Compare(h, first) < 0 {
			first = h
		}
	}
	z.MustAdd(soa(origin, first))
	for host, addr := range hosts {
		z.MustAdd(ns(origin, host))
		z.MustAdd(a(host, addr))
	}
	z.MustAdd(a(origin.MustPrepend("www"), netip.MustParseAddr("192.0.2.1")))
	return z
}

// serve creates a server, attaches it at addr, and registers it.
func (w *World) serve(hostname dnsname.Name, addr netip.Addr, z *zone.Zone) *authserver.Server {
	s, ok := w.Servers[hostname]
	if !ok {
		s = authserver.New(hostname)
		w.Servers[hostname] = s
	}
	s.AddZone(z)
	w.Net.Attach(addr, s)
	seen := false
	for _, a := range w.hostAddrs[hostname] {
		if a == addr {
			seen = true
			break
		}
	}
	if !seen {
		w.hostAddrs[hostname] = append(w.hostAddrs[hostname], addr)
	}
	return s
}

// AddrsOf returns the addresses hostname is attached at, in attachment
// order. It panics on a hostname the fixture never served, so a typo in
// a fault schedule fails loudly instead of silently injecting nothing.
func (w *World) AddrsOf(hostname dnsname.Name) []netip.Addr {
	addrs, ok := w.hostAddrs[hostname]
	if !ok {
		panic(fmt.Sprintf("miniworld: no server named %s", hostname))
	}
	return append([]netip.Addr(nil), addrs...)
}

// ChaosProfile wraps the world's network in a chaos transport whose
// per-class fault schedules are keyed by server *name* instead of
// address, so a behavioural test can say "this NS truncates, that one
// flaps" in one line:
//
//	tr := w.ChaosProfile(1, map[dnsname.Name][]chaos.Rule{
//		"ns1.city.gov.br.": {chaos.Persistent(chaos.Truncate, 1)},
//		"ns2.city.gov.br.": {chaos.FlapOutage(0, 10)},
//	})
//
// Each rule's Servers field is filled with the named host's addresses
// (any existing restriction is replaced). Hosts are applied in sorted
// name order so the rule order — and with it every fault decision — is
// deterministic. Unknown hostnames panic, per AddrsOf.
func (w *World) ChaosProfile(seed int64, profile map[dnsname.Name][]chaos.Rule) *chaos.Transport {
	return chaos.Wrap(w.Net, seed, w.ChaosRules(profile)...)
}

// ChaosRules resolves a name-keyed fault profile into the flat,
// deterministically ordered rule list ChaosProfile wraps the in-memory
// network with. Exposed so differential tests can apply the *same*
// schedule to a different underlying transport — e.g. the real-socket
// serving tier — and compare digests against the simnet run.
func (w *World) ChaosRules(profile map[dnsname.Name][]chaos.Rule) []chaos.Rule {
	hosts := make([]dnsname.Name, 0, len(profile))
	for host := range profile {
		hosts = append(hosts, host)
	}
	sort.Slice(hosts, func(i, j int) bool { return dnsname.Compare(hosts[i], hosts[j]) < 0 })
	var rules []chaos.Rule
	for _, host := range hosts {
		addrs := w.AddrsOf(host)
		for _, r := range profile[host] {
			r.Servers = addrs
			rules = append(rules, r)
		}
	}
	return rules
}

// ServerEndpoints returns every (hostname, address, server) attachment in
// the world, hostnames sorted, addresses in attachment order — the
// inventory a test needs to stand the same world up on real sockets.
func (w *World) ServerEndpoints() []ServerEndpoint {
	hosts := make([]dnsname.Name, 0, len(w.Servers))
	for host := range w.Servers {
		hosts = append(hosts, host)
	}
	sort.Slice(hosts, func(i, j int) bool { return dnsname.Compare(hosts[i], hosts[j]) < 0 })
	var out []ServerEndpoint
	for _, host := range hosts {
		for _, addr := range w.hostAddrs[host] {
			out = append(out, ServerEndpoint{Hostname: host, Addr: addr, Server: w.Servers[host]})
		}
	}
	return out
}

// ServerEndpoint is one (hostname, address, server) attachment.
type ServerEndpoint struct {
	Hostname dnsname.Name
	Addr     netip.Addr
	Server   *authserver.Server
}

// AddHostedChildren delegates n extra gov.br children to the third-party
// provider's nameservers and serves their zones on the provider, returning
// the new names. The gov.br zone carries no glue for the provider hosts,
// so every scan of these domains must resolve ns1/ns2.provider.com —
// the shape concurrency tests need to observe cache sharing and
// singleflight coalescing across domains.
func (w *World) AddHostedChildren(n int) []dnsname.Name {
	gov, ok := w.Servers["ns1.gov.br."].ZoneByOrigin("gov.br.")
	if !ok {
		panic("miniworld: gov.br zone missing")
	}
	p1 := w.Servers["ns1.provider.com."]
	p2 := w.Servers["ns2.provider.com."]
	names := make([]dnsname.Name, 0, n)
	for i := 0; i < n; i++ {
		name := dnsname.MustParse(fmt.Sprintf("hosted%d.gov.br", i))
		gov.MustAdd(ns(name, "ns1.provider.com."))
		gov.MustAdd(ns(name, "ns2.provider.com."))
		z := zone.New(name)
		z.MustAdd(soa(name, "ns1.provider.com."))
		z.MustAdd(ns(name, "ns1.provider.com."))
		z.MustAdd(ns(name, "ns2.provider.com."))
		p1.AddZone(z)
		p2.AddZone(z)
		names = append(names, name)
	}
	return names
}

// Addresses of multiglue.gov.br's nameserver (see AddMultiGlueChild).
// The numerically higher address is deliberately added to the parent
// zone first, so any code path that trusts glue record order instead of
// canonicalizing surfaces immediately.
var (
	MultiGlueHighAddr = netip.MustParseAddr("4.5.0.9")
	MultiGlueLowAddr  = netip.MustParseAddr("4.5.0.1")
)

// AddMultiGlueChild delegates multiglue.gov.br to a single nameserver
// that is glued at two addresses — inserted in descending order — and
// lists the NS record twice in the parent zone (the duplicate collapses
// at the zone layer, as RFC zones dedupe identical RRsets, but the
// referral still carries one host with a multi-address glue slice).
// This is the regression shape for the shared-glue-slice sort: the
// scanner must sort the slice once at map construction, not inside the
// per-host fan-out, and the result's Addrs must come out in
// netip.Addr.Less order regardless of glue record order. Returns the
// child name.
func (w *World) AddMultiGlueChild() dnsname.Name {
	gov, ok := w.Servers["ns1.gov.br."].ZoneByOrigin("gov.br.")
	if !ok {
		panic("miniworld: gov.br zone missing")
	}
	child := dnsname.MustParse("multiglue.gov.br")
	host := dnsname.MustParse("ns1.multiglue.gov.br")
	gov.MustAdd(ns(child, host))
	// The duplicate NS record is absorbed by zone.Add's identical-RR
	// dedupe; adding it documents the duplicate-host delegation shape
	// the glue sort must stay robust to.
	_ = gov.Add(ns(child, host))
	gov.MustAdd(a(host, MultiGlueHighAddr))
	gov.MustAdd(a(host, MultiGlueLowAddr))

	z := childZone(child, map[dnsname.Name]netip.Addr{host: MultiGlueHighAddr})
	z.MustAdd(a(host, MultiGlueLowAddr))
	w.serve(host, MultiGlueHighAddr, z)
	w.serve(host, MultiGlueLowAddr, z)
	return child
}

// SlowNSAddr is the address of slow-provider.com's only nameserver,
// which never responds (see BreakIntermediateZoneTransient).
var SlowNSAddr = netip.MustParseAddr("5.1.0.1")

// AddGluelessZone delegates a zone selfglue.gov.br to a nameserver
// inside the zone itself while providing no glue: the host cannot be
// resolved without the zone's servers, and the zone's server set cannot
// be built without the host's address. The delegation is therefore
// unresolvable — a real misconfiguration (missing glue for an
// in-bailiwick NS) — and because the host resolution and the zone build
// depend on each other, it is the shape that can cross-couple the
// resolver's host and zone singleflights. Returns the zone, its NS
// host, and a child name beneath the zone.
func (w *World) AddGluelessZone() (zoneName, host, child dnsname.Name) {
	gov, ok := w.Servers["ns1.gov.br."].ZoneByOrigin("gov.br.")
	if !ok {
		panic("miniworld: gov.br zone missing")
	}
	gov.MustAdd(ns("selfglue.gov.br.", "ns.selfglue.gov.br."))
	return "selfglue.gov.br.", "ns.selfglue.gov.br.", "dept.selfglue.gov.br."
}

// BreakIntermediateZoneTransient delegates an intermediate zone
// flaky.gov.br to a glue-less nameserver whose own resolution dead-ends
// in query timeouts (slow-provider.com's only server never answers) and
// returns m child names beneath it. Unlike BreakIntermediateZone's
// NXDOMAIN dead end, every failure on this path is timeout-rooted — the
// possibly-transient shape the scanner's second round re-probes, which
// the resolver must not negative-cache.
func (w *World) BreakIntermediateZoneTransient(m int) []dnsname.Name {
	gov, ok := w.Servers["ns1.gov.br."].ZoneByOrigin("gov.br.")
	if !ok {
		panic("miniworld: gov.br zone missing")
	}
	gov.MustAdd(ns("flaky.gov.br.", "ns.slow-provider.com."))

	com, ok := w.Servers["a.gtld-servers.com."].ZoneByOrigin("com.")
	if !ok {
		panic("miniworld: com zone missing")
	}
	com.MustAdd(ns("slow-provider.com.", "ns1.slow-provider.com."))
	com.MustAdd(a("ns1.slow-provider.com.", SlowNSAddr))

	slow := zone.New("slow-provider.com.")
	slow.MustAdd(soa("slow-provider.com.", "ns1.slow-provider.com."))
	slow.MustAdd(ns("slow-provider.com.", "ns1.slow-provider.com."))
	slow.MustAdd(a("ns1.slow-provider.com.", SlowNSAddr))
	srv := w.serve("ns1.slow-provider.com.", SlowNSAddr, slow)
	srv.SetBehavior(authserver.BehaviorUnresponsive)

	names := make([]dnsname.Name, 0, m)
	for i := 0; i < m; i++ {
		names = append(names, dnsname.MustParse(fmt.Sprintf("dept%d.flaky.gov.br", i)))
	}
	return names
}

// BreakIntermediateZone delegates an intermediate zone broken.gov.br to a
// nameserver under the non-existent gone-provider.com (no glue), so any
// walk through it fails, and returns m child names beneath it. Used to
// exercise negative zone caching.
func (w *World) BreakIntermediateZone(m int) []dnsname.Name {
	gov, ok := w.Servers["ns1.gov.br."].ZoneByOrigin("gov.br.")
	if !ok {
		panic("miniworld: gov.br zone missing")
	}
	gov.MustAdd(ns("broken.gov.br.", "ns.gone-provider.com."))
	names := make([]dnsname.Name, 0, m)
	for i := 0; i < m; i++ {
		names = append(names, dnsname.MustParse(fmt.Sprintf("dept%d.broken.gov.br", i)))
	}
	return names
}

// EvilNSAddr is where HijackCity's out-of-bailiwick nameserver lives.
var EvilNSAddr = netip.MustParseAddr("6.6.6.1")

// HijackCity rewrites city.gov.br's delegation in the gov.br zone to a
// single nameserver under evil-ops.com — out of bailiwick, absent from
// the provider catalog, hosting nothing else — and serves the child
// zone from that server so the domain still classifies healthy. The
// § VI-C takeover pattern in miniature: nothing about the domain's
// *health* changes, only who answers for it, which is exactly the
// signal the monitor's hijack heuristic must catch without a
// classification flip to lean on. Returns the evil NS hostname.
func (w *World) HijackCity() dnsname.Name {
	gov, ok := w.Servers["ns1.gov.br."].ZoneByOrigin("gov.br.")
	if !ok {
		panic("miniworld: gov.br zone missing")
	}
	gov.Remove("city.gov.br.", dnswire.TypeNS)
	gov.Remove("ns1.city.gov.br.", dnswire.TypeA)
	gov.Remove("ns2.city.gov.br.", dnswire.TypeA)
	evil := dnsname.MustParse("ns1.evil-ops.com")
	gov.MustAdd(ns("city.gov.br.", evil))

	com, ok := w.Servers["a.gtld-servers.com."].ZoneByOrigin("com.")
	if !ok {
		panic("miniworld: com zone missing")
	}
	com.MustAdd(ns("evil-ops.com.", evil))
	com.MustAdd(a(evil, EvilNSAddr))

	eo := zone.New("evil-ops.com.")
	eo.MustAdd(soa("evil-ops.com.", evil))
	eo.MustAdd(ns("evil-ops.com.", evil))
	eo.MustAdd(a(evil, EvilNSAddr))
	srv := w.serve(evil, EvilNSAddr, eo)

	city := zone.New("city.gov.br.")
	city.MustAdd(soa("city.gov.br.", evil))
	city.MustAdd(ns("city.gov.br.", evil))
	city.MustAdd(a("www.city.gov.br.", netip.MustParseAddr("192.0.2.66")))
	srv.AddZone(city)
	return evil
}

// Domains returns the fixture's government child domains.
func Domains() []dnsname.Name {
	return []dnsname.Name{
		"city.gov.br.",
		"lame.gov.br.",
		"dead.gov.br.",
		"single.gov.br.",
		"hosted.gov.br.",
		"inconsistent.gov.br.",
		"dangling.gov.br.",
	}
}

// String summarises the world for examples.
func (w *World) String() string {
	return fmt.Sprintf("miniworld: %d server addresses, %d domains under gov.br",
		w.Net.NumServers(), len(Domains()))
}
