package miniworld

import (
	"context"
	"strings"
	"testing"
	"time"

	"govdns/internal/authserver"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/simnet"
)

func mustName(s string) dnsname.Name { return dnsname.MustParse(s) }

func testContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 50*time.Millisecond)
}

func TestBuildStructure(t *testing.T) {
	w := Build()
	if len(w.Roots) != 1 || w.Roots[0] != RootAddr {
		t.Errorf("Roots = %v", w.Roots)
	}
	if w.Net.NumServers() == 0 {
		t.Fatal("no servers attached")
	}
	// Each fixture server hostname resolves to a live server object.
	for _, host := range []string{
		"a.root-servers.net.", "a.dns.br.", "a.gtld-servers.com.",
		"ns1.gov.br.", "ns1.city.gov.br.", "ns1.provider.com.",
	} {
		if _, ok := w.Servers[mustName(host)]; !ok {
			t.Errorf("server %s missing", host)
		}
	}
	// The deliberately dead servers advertise the unresponsive behavior.
	for _, host := range []string{"ns2.lame.gov.br.", "ns1.dead.gov.br."} {
		s, ok := w.Servers[mustName(host)]
		if !ok {
			t.Fatalf("server %s missing", host)
		}
		if s.Behavior() != authserver.BehaviorUnresponsive {
			t.Errorf("%s behavior = %v", host, s.Behavior())
		}
	}
	if len(Domains()) != 7 {
		t.Errorf("Domains() = %d, want 7 fixture children", len(Domains()))
	}
	if !strings.Contains(w.String(), "miniworld") {
		t.Errorf("String() = %q", w.String())
	}
}

func TestBuildWithNetworkAppliesConfig(t *testing.T) {
	w := BuildWithNetwork(simnet.Config{Seed: 3, LossRate: 1.0})
	// With 100% loss every exchange must fail.
	wq, err := dnswire.Encode(dnswire.NewQuery(1, "gov.br.", dnswire.TypeNS))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := testContext()
	defer cancel()
	if _, err := w.Net.Exchange(ctx, GovNS1Addr, wq); err == nil {
		t.Error("exchange succeeded despite 100% loss")
	}
}
