// Package registrar simulates the registration-availability and pricing
// checks the paper ran against GoDaddy for § IV-C/D's hijacking-risk
// analysis: which dangling nameserver domains can be registered, and at
// what cost. Prices are deterministic per domain and reproduce the
// distribution the paper reports — 0.01 to 20,000 USD with a median near
// 11.99 USD and a long premium tail (Fig. 12).
package registrar

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"govdns/internal/dnsname"
)

// Cents is a price in US cents. Using an integer type keeps price
// arithmetic exact.
type Cents int64

// String renders the price in dollars.
func (c Cents) String() string { return fmt.Sprintf("%.2f USD", float64(c)/100) }

// Dollars returns the price as a float for plotting.
func (c Cents) Dollars() float64 { return float64(c) / 100 }

// Registry tracks which domains are registered (taken) and which suffixes
// do not allow public registration at all (government suffixes, and TLDs
// that no longer operate).
type Registry struct {
	mu         sync.RWMutex
	taken      map[dnsname.Name]bool
	restricted *dnsname.SuffixSet
	priceSalt  uint64
}

// New creates an empty registry. restricted may be nil.
func New(restricted *dnsname.SuffixSet) *Registry {
	if restricted == nil {
		restricted = dnsname.NewSuffixSet()
	}
	return &Registry{
		taken:      make(map[dnsname.Name]bool),
		restricted: restricted,
	}
}

// SetPriceSalt varies the deterministic price function, letting tests
// and generators derive distinct but reproducible price landscapes.
func (r *Registry) SetPriceSalt(salt uint64) { r.priceSalt = salt }

// MarkRegistered records that domain (its registrable form is used as
// given) is taken.
func (r *Registry) MarkRegistered(domain dnsname.Name) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.taken[domain] = true
}

// MarkDropped records that domain is no longer registered — an expired
// provider domain becomes available for anyone, which is exactly the
// hijacking scenario the paper probes.
func (r *Registry) MarkDropped(domain dnsname.Name) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.taken, domain)
}

// IsRegistered reports whether domain is currently taken.
func (r *Registry) IsRegistered(domain dnsname.Name) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.taken[domain]
}

// Available reports whether domain could be registered right now: it is
// not taken and does not fall under a restricted suffix.
func (r *Registry) Available(domain dnsname.Name) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.taken[domain] {
		return false
	}
	if r.restricted.Contains(domain) {
		return false
	}
	if _, under := r.restricted.LongestSuffix(domain); under {
		return false
	}
	return true
}

// Price bands calibrated to the paper's Fig. 12: most available domains
// cost a standard registration fee (median 11.99), a tail of promo-priced
// domains reaches down to 0.01, and a small premium tail reaches 20,000.
const (
	// MinPriceCents and MaxPriceCents bound the price model, matching
	// the paper's observed range of 0.01–20,000 USD.
	MinPriceCents Cents = 1
	MaxPriceCents Cents = 2_000_000
	// MedianPriceCents is the calibration target for the distribution's
	// median (11.99 USD).
	MedianPriceCents Cents = 1199
)

// Price quotes the registration cost for domain. The quote is a pure
// function of the domain name and the registry's salt. Domains held by
// parking services are aftermarket-listed and never quote below 300 USD
// (the paper's observed minimum for the parked dangling records).
func (r *Registry) Price(domain dnsname.Name) Cents {
	price := r.basePrice(domain)
	if labels := domain.Labels(); len(labels) > 0 && strings.Contains(labels[0], "parked") {
		if price < 30_000 {
			price = 30_000 + price%270_000
		}
	}
	return price
}

func (r *Registry) basePrice(domain dnsname.Name) Cents {
	h := fnv.New64a()
	// Hash the name and salt; fnv never errors.
	_, _ = h.Write([]byte(domain))
	var saltBytes [8]byte
	for i := 0; i < 8; i++ {
		saltBytes[i] = byte(r.priceSalt >> (8 * i))
	}
	_, _ = h.Write(saltBytes[:])
	v := h.Sum64()

	band := v % 1000
	roll := (v / 1000) % 1_000_000 // uniform in [0, 1e6)
	switch {
	case band < 250:
		// Promo / bargain tier: 0.01 – 11.98.
		return MinPriceCents + Cents(roll%1198)
	case band < 750:
		// Standard tier: exactly the common registration price points.
		points := []Cents{1199, 1299, 999, 1199, 1499, 1199, 1099, 1199}
		return points[roll%uint64(len(points))]
	case band < 950:
		// Elevated tier: 15.00 – 99.99.
		return 1500 + Cents(roll%8500)
	case band < 995:
		// Premium tier: 100 – 2,999 USD.
		return 10_000 + Cents(roll%290_000)
	default:
		// Aftermarket tier: 3,000 – 20,000 USD.
		return 300_000 + Cents(roll%1_700_001)
	}
}

// Quote prices a set of domains and returns the prices sorted ascending,
// ready for the Fig. 12 cost CDF.
func (r *Registry) Quote(domains []dnsname.Name) []Cents {
	out := make([]Cents, len(domains))
	for i, d := range domains {
		out[i] = r.Price(d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Median returns the median of sorted prices (lower middle for even
// counts), or 0 for an empty slice.
func Median(sorted []Cents) Cents {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[(len(sorted)-1)/2]
}
