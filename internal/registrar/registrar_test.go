package registrar

import (
	"fmt"
	"testing"

	"govdns/internal/dnsname"
)

func TestAvailability(t *testing.T) {
	r := New(dnsname.NewSuffixSet("gov.br", "gov.cn"))
	r.MarkRegistered("provider.com.")

	if r.Available("provider.com.") {
		t.Error("registered domain reported available")
	}
	if !r.Available("gone-provider.com.") {
		t.Error("unregistered domain reported unavailable")
	}
	if r.Available("anything.gov.br.") {
		t.Error("domain under restricted suffix reported available")
	}
	if r.Available("gov.br.") {
		t.Error("restricted suffix itself reported available")
	}
	r.MarkDropped("provider.com.")
	if !r.Available("provider.com.") {
		t.Error("dropped domain reported unavailable")
	}
}

func TestIsRegistered(t *testing.T) {
	r := New(nil)
	if r.IsRegistered("x.com.") {
		t.Error("empty registry has registrations")
	}
	r.MarkRegistered("x.com.")
	if !r.IsRegistered("x.com.") {
		t.Error("MarkRegistered did not take")
	}
}

func TestPriceDeterministic(t *testing.T) {
	r := New(nil)
	a := r.Price("example.com.")
	b := r.Price("example.com.")
	if a != b {
		t.Errorf("Price not deterministic: %v vs %v", a, b)
	}
	r2 := New(nil)
	r2.SetPriceSalt(99)
	// With a different salt the landscape differs for at least some
	// domains (check several to avoid a coincidental equal price).
	diff := false
	for i := 0; i < 50; i++ {
		d := dnsname.MustParse(fmt.Sprintf("domain%d.com", i))
		if r.Price(d) != r2.Price(d) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("salt has no effect on prices")
	}
}

func TestPriceDistributionShape(t *testing.T) {
	// The paper reports prices from 0.01 to 20,000 USD with a median of
	// 11.99. Check the model's shape over a large sample.
	r := New(nil)
	var domains []dnsname.Name
	for i := 0; i < 5000; i++ {
		domains = append(domains, dnsname.MustParse(fmt.Sprintf("ns-domain-%d.com", i)))
	}
	prices := r.Quote(domains)

	if prices[0] < MinPriceCents {
		t.Errorf("min price %v below floor", prices[0])
	}
	if prices[len(prices)-1] > MaxPriceCents {
		t.Errorf("max price %v above cap", prices[len(prices)-1])
	}
	med := Median(prices)
	if med < 900 || med > 1400 {
		t.Errorf("median = %v, want near 11.99 USD", med)
	}
	// A visible premium tail must exist (paper: up to 20,000 USD).
	if prices[len(prices)-1] < 100_000 {
		t.Errorf("no premium tail: max %v", prices[len(prices)-1])
	}
	// But premium prices must be rare (<10%).
	premium := 0
	for _, p := range prices {
		if p >= 10_000 {
			premium++
		}
	}
	if frac := float64(premium) / float64(len(prices)); frac > 0.10 {
		t.Errorf("premium fraction = %.2f, want < 0.10", frac)
	}
}

func TestQuoteSorted(t *testing.T) {
	r := New(nil)
	prices := r.Quote([]dnsname.Name{"a.com.", "b.com.", "c.com.", "d.com."})
	for i := 1; i < len(prices); i++ {
		if prices[i] < prices[i-1] {
			t.Fatalf("Quote not sorted: %v", prices)
		}
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if Median([]Cents{5}) != 5 {
		t.Error("Median single")
	}
	if Median([]Cents{1, 2, 3}) != 2 {
		t.Error("Median odd")
	}
	if Median([]Cents{1, 2, 3, 4}) != 2 {
		t.Error("Median even (lower middle)")
	}
}

func TestCentsFormatting(t *testing.T) {
	if Cents(1199).String() != "11.99 USD" {
		t.Errorf("String = %q", Cents(1199).String())
	}
	if Cents(1199).Dollars() != 11.99 {
		t.Errorf("Dollars = %v", Cents(1199).Dollars())
	}
}
