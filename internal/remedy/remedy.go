// Package remedy implements the remediation approaches the paper's § V-B
// surveys: CSYNC-style child-to-parent synchronization (RFC 7477) for
// inconsistent delegations, removal of stale delegations, and
// registry-lock advisories for domains whose nameservers sit under
// registrable (hijackable) domains.
//
// The workflow mirrors an operator's: scan, propose a plan, apply the
// automatable parts to the parent zones, and re-scan to verify.
package remedy

import (
	"context"
	"fmt"
	"sort"

	"govdns/internal/analysis"
	"govdns/internal/dnsname"
	"govdns/internal/dnswire"
	"govdns/internal/measure"
	"govdns/internal/registrar"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
	"govdns/internal/zone"
)

// ActionKind classifies a proposed fix.
type ActionKind int

// Remediation actions.
const (
	// ActionSyncParent replaces the parent's NS set for a domain with
	// the child's authoritative set (the CSYNC model).
	ActionSyncParent ActionKind = iota + 1
	// ActionRemoveStale deletes the delegation of a domain whose
	// nameservers no longer answer at all — the stale records behind
	// fully defective delegations.
	ActionRemoveStale
	// ActionRegistryLock is advisory: the domain's delegation involves
	// a registrable nameserver domain, so automated changes must be
	// suspended and the registration risk handled by a human (the
	// registry-lock recommendation of § V-B).
	ActionRegistryLock
)

// String returns the action mnemonic.
func (k ActionKind) String() string {
	switch k {
	case ActionSyncParent:
		return "sync-parent"
	case ActionRemoveStale:
		return "remove-stale"
	case ActionRegistryLock:
		return "registry-lock"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one proposed fix for one domain.
type Action struct {
	Kind   ActionKind
	Domain dnsname.Name
	// NewNS is the replacement parent NS set (ActionSyncParent).
	NewNS []dnsname.Name
	// Reason is a human-readable justification.
	Reason string
	// NSDomains lists the registrable nameserver domains involved
	// (ActionRegistryLock).
	NSDomains []dnsname.Name
}

// Plan is the set of proposed actions.
type Plan struct {
	Actions []Action
}

// Counts tallies the plan by kind.
func (p *Plan) Counts() map[ActionKind]int {
	out := make(map[ActionKind]int)
	for _, a := range p.Actions {
		out[a.Kind]++
	}
	return out
}

// Propose derives a remediation plan from scan results: stale
// delegations are removed, inconsistent-but-responsive delegations are
// synchronized to the child view, and anything involving a registrable
// nameserver domain becomes a registry-lock advisory instead of an
// automated change (automating those would complete the hijack).
func Propose(results []*measure.DomainResult, m *analysis.Mapper, reg *registrar.Registry) *Plan {
	plan := &Plan{}
	for _, r := range results {
		if !r.HasData() {
			continue
		}

		// Registrable nameserver domains anywhere in the delegation?
		var risky []dnsname.Name
		for _, host := range append(append([]dnsname.Name{}, r.ParentNS...), r.ChildNS()...) {
			if m.IsPrivateHost(r.Domain, host) {
				continue
			}
			nsDomain := analysis.NSDomain(host)
			if reg.Available(nsDomain) {
				risky = append(risky, nsDomain)
			}
		}
		if len(risky) > 0 {
			sort.Slice(risky, func(i, j int) bool { return dnsname.Compare(risky[i], risky[j]) < 0 })
			plan.Actions = append(plan.Actions, Action{
				Kind:      ActionRegistryLock,
				Domain:    r.Domain,
				NSDomains: dedupe(risky),
				Reason:    "delegation references registrable nameserver domains; lock and fix out of band",
			})
			continue
		}

		switch {
		case r.FullyDefective():
			plan.Actions = append(plan.Actions, Action{
				Kind:   ActionRemoveStale,
				Domain: r.Domain,
				Reason: "no delegated nameserver answers; delegation is stale",
			})
		case analysis.Classify(r) != analysis.ClassEqual || r.PartiallyDefective():
			child := r.ChildNS()
			if len(child) == 0 {
				continue
			}
			plan.Actions = append(plan.Actions, Action{
				Kind:   ActionSyncParent,
				Domain: r.Domain,
				NewNS:  child,
				Reason: "parent NS set differs from the child's authoritative set",
			})
		}
	}
	return plan
}

func dedupe(names []dnsname.Name) []dnsname.Name {
	out := names[:0]
	var prev dnsname.Name
	for i, n := range names {
		if i == 0 || n != prev {
			out = append(out, n)
		}
		prev = n
	}
	return out
}

// Applier executes a plan against the active world's parent zones.
type Applier struct {
	// Active is the world to fix.
	Active *worldgen.Active
	// Client queries children for CSYNC records; required for
	// ActionSyncParent.
	Client *resolver.Client
	// Force applies synchronizations even without an immediate-flagged
	// CSYNC record (modelling out-of-band confirmation).
	Force bool
}

// Outcome summarizes an Apply run.
type Outcome struct {
	Applied, NeedsOutOfBand, Advisory, Failed int
}

// Apply executes the plan. Sync actions honour RFC 7477 semantics: the
// child must publish a CSYNC record covering NS, and without the
// immediate flag the change requires out-of-band confirmation (skipped
// unless Force is set). Registry-lock actions are advisory and never
// change zones.
func (ap *Applier) Apply(ctx context.Context, plan *Plan) (*Outcome, error) {
	out := &Outcome{}
	for _, action := range plan.Actions {
		switch action.Kind {
		case ActionRegistryLock:
			out.Advisory++
		case ActionRemoveStale:
			parent, ok := ap.parentOf(action.Domain)
			if !ok {
				out.Failed++
				continue
			}
			parent.Remove(action.Domain, dnswire.TypeNS)
			out.Applied++
		case ActionSyncParent:
			ok, err := ap.syncParent(ctx, action)
			if err != nil {
				out.Failed++
				continue
			}
			if !ok {
				out.NeedsOutOfBand++
				continue
			}
			out.Applied++
		}
	}
	return out, ctx.Err()
}

// parentOf finds the parent zone holding a domain's delegation.
func (ap *Applier) parentOf(domain dnsname.Name) (*zone.Zone, bool) {
	for cur := domain.Parent(); !cur.IsRoot(); cur = cur.Parent() {
		if z, ok := ap.Active.ParentZone(cur); ok {
			return z, true
		}
	}
	return nil, false
}

// syncParent checks the child's CSYNC record and, when allowed, rewrites
// the parent's delegation to the child's NS set (with glue for hosts the
// world knows addresses for).
func (ap *Applier) syncParent(ctx context.Context, action Action) (bool, error) {
	parent, ok := ap.parentOf(action.Domain)
	if !ok {
		return false, fmt.Errorf("remedy: no parent zone for %s", action.Domain)
	}
	if !ap.Force {
		allowed, err := ap.csyncAllows(ctx, action)
		if err != nil || !allowed {
			return false, err
		}
	}

	parent.Remove(action.Domain, dnswire.TypeNS)
	for _, host := range action.NewNS {
		if err := parent.Add(dnswire.RR{
			Name: action.Domain, Class: dnswire.ClassIN, TTL: 3600,
			Data: dnswire.NSData{Host: host},
		}); err != nil {
			return false, err
		}
		if host.IsSubdomainOf(parent.Origin()) {
			for _, addr := range ap.Active.AddrsOf(host) {
				if err := parent.Add(dnswire.RR{
					Name: host, Class: dnswire.ClassIN, TTL: 3600,
					Data: dnswire.AData{Addr: addr},
				}); err != nil {
					return false, err
				}
			}
		}
	}
	return true, nil
}

// csyncAllows queries the child's nameservers for a CSYNC record with
// the immediate flag covering NS.
func (ap *Applier) csyncAllows(ctx context.Context, action Action) (bool, error) {
	for _, host := range action.NewNS {
		for _, addr := range ap.Active.AddrsOf(host) {
			resp, err := ap.Client.Query(ctx, addr, action.Domain, dnswire.TypeCSYNC)
			if err != nil {
				continue
			}
			for _, rr := range resp.AnswersOfType(dnswire.TypeCSYNC) {
				csync, ok := rr.Data.(dnswire.CSYNCData)
				if !ok {
					continue
				}
				return csync.Immediate() && csync.Covers(dnswire.TypeNS), nil
			}
			// An authoritative answer without CSYNC means the child
			// does not opt in: out-of-band confirmation required.
			if resp.Header.Authoritative {
				return false, nil
			}
		}
	}
	return false, nil
}
