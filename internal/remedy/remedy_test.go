package remedy

import (
	"context"
	"testing"
	"time"

	"govdns/internal/analysis"
	"govdns/internal/measure"
	"govdns/internal/resolver"
	"govdns/internal/worldgen"
)

// fixture builds a small world, scans it, and returns everything the
// remediation workflow needs.
type fixture struct {
	world   *worldgen.World
	active  *worldgen.Active
	mapper  *analysis.Mapper
	scanner *measure.Scanner
	results []*measure.DomainResult
}

var _fixture *fixture

func buildFixture(t *testing.T) *fixture {
	t.Helper()
	if _fixture != nil {
		return _fixture
	}
	w := worldgen.Generate(worldgen.Config{Seed: 21, Scale: 0.01})
	active := worldgen.Build(w)
	var countries []analysis.Country
	for _, c := range w.Countries {
		countries = append(countries, analysis.Country{
			Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix,
		})
	}
	client := resolver.NewClient(active.Net)
	client.Timeout = 10 * time.Millisecond
	client.Retries = 1
	scanner := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	scanner.Concurrency = 128
	_fixture = &fixture{
		world:   w,
		active:  active,
		mapper:  analysis.NewMapper(countries),
		scanner: scanner,
		results: scanner.Scan(context.Background(), active.QueryList),
	}
	return _fixture
}

func (f *fixture) rescan() []*measure.DomainResult {
	client := resolver.NewClient(f.active.Net)
	client.Timeout = 10 * time.Millisecond
	client.Retries = 1
	scanner := measure.NewScanner(resolver.NewIterator(client, f.active.Roots))
	scanner.Concurrency = 128
	return scanner.Scan(context.Background(), f.active.QueryList)
}

func TestProposeFindsAllActionKinds(t *testing.T) {
	f := buildFixture(t)
	plan := Propose(f.results, f.mapper, f.active.Reg)
	counts := plan.Counts()
	if counts[ActionSyncParent] == 0 {
		t.Error("no sync-parent actions proposed")
	}
	if counts[ActionRemoveStale] == 0 {
		t.Error("no remove-stale actions proposed")
	}
	if counts[ActionRegistryLock] == 0 {
		t.Error("no registry-lock advisories proposed")
	}
	for _, a := range plan.Actions {
		if a.Kind == ActionSyncParent && len(a.NewNS) == 0 {
			t.Fatalf("sync action without NS set: %+v", a)
		}
		if a.Kind == ActionRegistryLock && len(a.NSDomains) == 0 {
			t.Fatalf("lock advisory without NS domains: %+v", a)
		}
	}
}

func TestProposeNeverAutomatesHijackableDomains(t *testing.T) {
	f := buildFixture(t)
	plan := Propose(f.results, f.mapper, f.active.Reg)
	// Domains flagged for registry lock must not also receive automated
	// actions.
	locked := make(map[string]bool)
	for _, a := range plan.Actions {
		if a.Kind == ActionRegistryLock {
			locked[string(a.Domain)] = true
		}
	}
	for _, a := range plan.Actions {
		if a.Kind != ActionRegistryLock && locked[string(a.Domain)] {
			t.Fatalf("automated %s proposed for hijack-risk domain %s", a.Kind, a.Domain)
		}
	}
}

func TestApplyImprovesConsistencyAndDefects(t *testing.T) {
	f := buildFixture(t)
	before := analysis.Consistency(f.results, f.mapper)
	beforeDefects := analysis.Delegations(f.results, f.mapper)

	plan := Propose(f.results, f.mapper, f.active.Reg)
	client := resolver.NewClient(f.active.Net)
	client.Timeout = 10 * time.Millisecond
	applier := &Applier{Active: f.active, Client: client, Force: true}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	outcome, err := applier.Apply(ctx, plan)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if outcome.Applied == 0 {
		t.Fatalf("nothing applied: %+v", outcome)
	}

	after := f.rescan()
	afterCons := analysis.Consistency(after, f.mapper)
	afterDefects := analysis.Delegations(after, f.mapper)

	if afterCons.EqualPct <= before.EqualPct {
		t.Errorf("consistency did not improve: %.1f%% -> %.1f%%", before.EqualPct, afterCons.EqualPct)
	}
	if afterDefects.AnyDefectPct() >= beforeDefects.AnyDefectPct() {
		t.Errorf("defects did not drop: %.1f%% -> %.1f%%",
			beforeDefects.AnyDefectPct(), afterDefects.AnyDefectPct())
	}
	// Forced remediation should push consistency well above 90%.
	if afterCons.EqualPct < 90 {
		t.Errorf("post-remediation consistency only %.1f%%", afterCons.EqualPct)
	}
}

func TestApplyWithoutForceHonoursCSYNC(t *testing.T) {
	// A fresh world so the previous test's mutations don't interfere.
	w := worldgen.Generate(worldgen.Config{Seed: 33, Scale: 0.005})
	active := worldgen.Build(w)
	var countries []analysis.Country
	for _, c := range w.Countries {
		countries = append(countries, analysis.Country{
			Code: c.Code, Name: c.Name, SubRegion: c.SubRegion, Suffix: c.Suffix,
		})
	}
	mapper := analysis.NewMapper(countries)
	client := resolver.NewClient(active.Net)
	client.Timeout = 10 * time.Millisecond
	client.Retries = 1
	scanner := measure.NewScanner(resolver.NewIterator(client, active.Roots))
	scanner.Concurrency = 128
	results := scanner.Scan(context.Background(), active.QueryList)

	plan := Propose(results, mapper, active.Reg)
	applier := &Applier{Active: active, Client: client}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	outcome, err := applier.Apply(ctx, plan)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Roughly a third of children publish no immediate CSYNC, and
	// partial-shared inconsistencies have no CSYNC at all: some actions
	// must be deferred to out-of-band handling.
	if outcome.NeedsOutOfBand == 0 {
		t.Errorf("expected some out-of-band deferrals: %+v", outcome)
	}
	if outcome.Applied == 0 {
		t.Errorf("expected some CSYNC-immediate applications: %+v", outcome)
	}
}

func TestActionKindString(t *testing.T) {
	if ActionSyncParent.String() != "sync-parent" ||
		ActionRemoveStale.String() != "remove-stale" ||
		ActionRegistryLock.String() != "registry-lock" {
		t.Error("action mnemonics wrong")
	}
	if ActionKind(99).String() == "" {
		t.Error("unknown kind must still format")
	}
}
